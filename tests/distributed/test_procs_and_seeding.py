"""Unit tests for the worker-environment helpers and per-shard seeding."""

import os

import pytest

from repro.distributed import shard_seed
from repro.distributed.procs import (
    BLAS_THREAD_VARS,
    pinned_blas_env,
    thread_domain,
)
from repro.execution import EngineRuntime, ExecutionConfig


class TestThreadDomain:
    def test_splits_cores_across_workers(self):
        cores = os.cpu_count() or 1
        assert thread_domain(1) == max(1, cores)
        assert thread_domain(cores * 2) == 1  # never below one thread

    def test_rejects_non_positive_worker_count(self):
        with pytest.raises(ValueError):
            thread_domain(0)


class TestPinnedBlasEnv:
    def test_exports_caps_and_restores_previous_values(self, monkeypatch):
        first, second = BLAS_THREAD_VARS[0], BLAS_THREAD_VARS[1]
        monkeypatch.setenv(first, "99")
        monkeypatch.delenv(second, raising=False)
        domain = str(thread_domain(2))
        with pinned_blas_env(2):
            assert all(os.environ[var] == domain for var in BLAS_THREAD_VARS)
        assert os.environ[first] == "99"      # previous value restored
        assert second not in os.environ      # previously unset stays unset

    def test_restores_on_exception(self, monkeypatch):
        first = BLAS_THREAD_VARS[0]
        monkeypatch.setenv(first, "7")
        with pytest.raises(RuntimeError):
            with pinned_blas_env(2):
                raise RuntimeError("boom")
        assert os.environ[first] == "7"


class TestShardSeed:
    def test_deterministic_and_distinct_across_shards(self):
        seeds = [shard_seed(9, index, 4) for index in range(4)]
        assert seeds == [shard_seed(9, index, 4) for index in range(4)]
        assert len(set(seeds)) == 4

    def test_depends_on_shard_count_and_base_seed(self):
        assert shard_seed(9, 0, 2) != shard_seed(9, 0, 3)
        assert shard_seed(9, 0, 2) != shard_seed(10, 0, 2)

    def test_index_validation(self):
        with pytest.raises(ValueError):
            shard_seed(9, 2, 2)
        with pytest.raises(ValueError):
            shard_seed(9, -1, 2)


class TestExecutionConfigShards:
    def test_default_and_validation(self):
        assert ExecutionConfig().shards == 1
        with pytest.raises(ValueError, match="shards"):
            ExecutionConfig(shards=0)

    def test_describe_mentions_shards_only_when_distributed(self):
        assert "shards" not in ExecutionConfig().describe()
        assert "shards=3" in ExecutionConfig(shards=3).describe()

    def test_runtime_stats_record_shards(self):
        runtime = EngineRuntime(ExecutionConfig(shards=2))
        assert runtime.stats()["shards"] == 2

    def test_engine_record_line_includes_shards(self):
        from repro.experiments.records import format_engine_stats

        sharded = EngineRuntime(ExecutionConfig(shards=2)).stats()
        single = EngineRuntime(ExecutionConfig()).stats()
        assert "shards=2" in format_engine_stats(sharded)
        assert "shards" not in format_engine_stats(single)
