"""Integration tests: full training runs tying the whole stack together.

These exercise the paper's central claims end-to-end at a small scale:
training with the approximate dropout patterns works (the model learns), the
pattern stream is statistically equivalent to the target Bernoulli rate, and
the modelled GPU time of a pattern run is lower than the conventional-dropout
baseline while the learned accuracy stays in the same band.
"""

import numpy as np
import pytest

from repro.data import make_synthetic_mnist
from repro.dropout import PatternSampler, equivalence_report
from repro.models import MLPClassifier, MLPConfig, LSTMConfig, LSTMLanguageModel
from repro.training import (
    ClassifierTrainer,
    ClassifierTrainingConfig,
    LanguageModelTrainer,
    LanguageModelTrainingConfig,
)


@pytest.fixture(scope="module")
def easy_mnist():
    """A moderately easy digit task so short training runs reach high accuracy."""
    return make_synthetic_mnist(num_train=900, num_test=300, noise=0.35,
                                prototypes_per_class=4, label_noise=0.02, seed=11)


def train_mlp(strategy, data, rates=(0.3, 0.3), epochs=6, hidden=96):
    model = MLPClassifier(MLPConfig(hidden_sizes=(hidden, hidden), drop_rates=rates,
                                    strategy=strategy, seed=1))
    trainer = ClassifierTrainer(model, data, ClassifierTrainingConfig(
        batch_size=64, epochs=epochs, learning_rate=0.01, seed=1))
    return trainer.train()


class TestMLPEndToEnd:
    @pytest.mark.parametrize("strategy", ["original", "row", "tile"])
    def test_each_strategy_learns(self, easy_mnist, strategy):
        result = train_mlp(strategy, easy_mnist)
        assert result.final_metric > 0.6, f"{strategy} failed to learn"

    def test_approximate_dropout_accuracy_close_to_baseline(self, easy_mnist):
        """The headline accuracy claim, at reduced scale with a loose band."""
        baseline = train_mlp("original", easy_mnist)
        row = train_mlp("row", easy_mnist)
        assert row.final_metric > baseline.final_metric - 0.10

    def test_row_run_is_faster_on_modelled_gpu_time(self, easy_mnist):
        baseline = train_mlp("original", easy_mnist, epochs=1)
        row = train_mlp("row", easy_mnist, epochs=1)
        assert row.iterations == baseline.iterations
        assert row.simulated_time_ms < baseline.simulated_time_ms

    def test_deterministic_given_seed(self, easy_mnist):
        first = train_mlp("row", easy_mnist, epochs=1)
        second = train_mlp("row", easy_mnist, epochs=1)
        assert first.final_metric == pytest.approx(second.final_metric)


class TestLSTMEndToEnd:
    def test_row_lstm_learns_language_structure(self, tiny_corpus):
        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=tiny_corpus.vocab_size, embed_size=20, hidden_size=32,
            num_layers=2, drop_rates=(0.3, 0.3), strategy="row", seed=2))
        trainer = LanguageModelTrainer(model, tiny_corpus, LanguageModelTrainingConfig(
            batch_size=5, seq_len=12, epochs=3, learning_rate=1.0, seed=2))
        result = trainer.train()
        # Better than a uniform model over the vocabulary.
        assert result.final_metric < tiny_corpus.vocab_size * 0.8
        assert result.speedup > 1.0


class TestStatisticalEquivalenceEndToEnd:
    @pytest.mark.parametrize("rate", [0.3, 0.5, 0.7])
    def test_sampled_pattern_stream_matches_bernoulli_rate(self, rate, rng):
        sampler = PatternSampler(rate, max_period=8, rng=rng)
        report = equivalence_report(sampler, num_units=128, iterations=1500)
        assert report.is_equivalent(tolerance=0.05)
        assert abs(report.analytic_global_rate - rate) < 0.02
