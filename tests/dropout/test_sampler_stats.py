"""Statistical tests for the vectorized (batched) pattern sampler.

The pattern-pool engine replaces per-step scalar RNG draws with one batched
draw per epoch; these tests check the replacement is statistically faithful:
the empirical drop rate matches the target, the period distribution matches
the searched distribution ``K`` (and the scalar sampler's), and the
distribution entropy — the paper's sub-model-diversity measure — is preserved.
"""

import numpy as np
import pytest

from repro.dropout import (
    PatternSampler,
    row_keep_counts,
    row_pattern_mask,
    row_pattern_masks,
)

N_DRAWS = 20_000


def empirical_period_distribution(periods: np.ndarray, max_period: int) -> np.ndarray:
    counts = np.bincount(periods - 1, minlength=max_period)
    return counts / counts.sum()


def entropy(distribution: np.ndarray) -> float:
    clipped = np.clip(distribution, 1e-12, None)
    return float(-np.sum(distribution * np.log(clipped)))


class TestVectorizedSamplerStatistics:
    @pytest.mark.parametrize("target", [0.3, 0.5, 0.7])
    def test_empirical_drop_rate_matches_target(self, target):
        sampler = PatternSampler(target, max_period=16,
                                 rng=np.random.default_rng(0))
        patterns = sampler.sample_row_patterns(128, N_DRAWS)
        mean_rate = float(np.mean([p.drop_rate for p in patterns]))
        # The achieved rate of the search is within 0.02 of the target, and
        # 20k draws put the Monte-Carlo error well below 0.01.
        assert abs(mean_rate - target) < 0.03

    def test_period_distribution_matches_searched_distribution(self):
        sampler = PatternSampler(0.5, max_period=16, rng=np.random.default_rng(1))
        periods, _ = sampler.sample_many(N_DRAWS)
        empirical = empirical_period_distribution(periods, 16)
        total_variation = 0.5 * np.abs(empirical - sampler.distribution).sum()
        assert total_variation < 0.02

    def test_entropy_preserved(self):
        """Pattern-distribution entropy (sub-model diversity) survives batching."""
        sampler = PatternSampler(0.6, max_period=16, rng=np.random.default_rng(2))
        periods, _ = sampler.sample_many(N_DRAWS)
        empirical = empirical_period_distribution(periods, 16)
        assert abs(entropy(empirical) - sampler.result.entropy) < 0.05

    def test_vectorized_matches_scalar_sampler(self):
        """Batched and scalar draws realise the same period distribution."""
        vec = PatternSampler(0.5, max_period=12, rng=np.random.default_rng(3))
        scalar = PatternSampler(0.5, max_period=12, rng=np.random.default_rng(4))
        vec_periods, _ = vec.sample_many(N_DRAWS)
        scalar_periods = np.array([scalar.sample_period() for _ in range(4000)])
        vec_dist = empirical_period_distribution(vec_periods, 12)
        scalar_dist = empirical_period_distribution(scalar_periods, 12)
        total_variation = 0.5 * np.abs(vec_dist - scalar_dist).sum()
        assert total_variation < 0.04
        assert abs(entropy(vec_dist) - entropy(scalar_dist)) < 0.1

    def test_biases_uniform_conditional_on_period(self):
        sampler = PatternSampler(0.7, max_period=8, rng=np.random.default_rng(5))
        periods, biases = sampler.sample_many(N_DRAWS)
        assert np.all(biases >= 0) and np.all(biases < periods)
        for dp in (2, 3, 4):
            conditional = biases[periods == dp]
            if len(conditional) < 500:
                continue
            freqs = np.bincount(conditional, minlength=dp) / len(conditional)
            np.testing.assert_allclose(freqs, 1.0 / dp, atol=0.05)

    def test_per_unit_drop_rate_uniform_across_units(self):
        """No unit is systematically favoured by the pooled pattern stream."""
        sampler = PatternSampler(0.5, max_period=8, rng=np.random.default_rng(6))
        patterns = sampler.sample_row_patterns(64, 4000)
        drop_freq = np.zeros(64)
        for pattern in patterns:
            drop_freq += 1.0 - pattern.mask()
        drop_freq /= len(patterns)
        assert abs(drop_freq.mean() - sampler.expected_drop_rate()) < 0.03
        assert drop_freq.std() < 0.05

    def test_sample_many_validation(self):
        sampler = PatternSampler(0.5, max_period=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            sampler.sample_many(0)

    def test_tile_patterns_period_clipped_to_tile_count(self):
        sampler = PatternSampler(0.5, max_period=16, rng=np.random.default_rng(7))
        patterns = sampler.sample_tile_patterns(8, 8, 200, tile=4)  # 4 tiles
        assert all(p.dp <= 4 for p in patterns)
        assert all(p.bias < p.dp for p in patterns)


class TestVectorizedMaskHelpers:
    def test_batched_masks_match_scalar_masks(self):
        periods = np.array([1, 2, 3, 5, 5])
        biases = np.array([0, 1, 2, 0, 4])
        batched = row_pattern_masks(17, periods, biases)
        assert batched.shape == (5, 17)
        for row, (dp, b) in enumerate(zip(periods, biases)):
            np.testing.assert_array_equal(batched[row],
                                          row_pattern_mask(17, int(dp), int(b)))

    def test_keep_counts_match_mask_sums(self):
        rng = np.random.default_rng(0)
        periods = rng.integers(1, 9, size=50)
        biases = (rng.random(50) * periods).astype(np.int64)
        counts = row_keep_counts(23, periods, biases)
        masks = row_pattern_masks(23, periods, biases)
        np.testing.assert_array_equal(counts, masks.sum(axis=1).astype(np.int64))

    def test_validation(self):
        with pytest.raises(ValueError):
            row_pattern_masks(8, np.array([2, 2]), np.array([0]))
        with pytest.raises(ValueError):
            row_pattern_masks(8, np.array([2]), np.array([2]))
        with pytest.raises(ValueError):
            row_keep_counts(8, np.array([0]), np.array([0]))
