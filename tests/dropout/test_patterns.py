"""Tests and property-based invariants for the RDP/TDP pattern classes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dropout import (
    RowDropoutPattern,
    TileDropoutPattern,
    max_row_patterns,
    max_tile_patterns,
    row_pattern_mask,
    tile_pattern_mask,
)


class TestRowPatternBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            RowDropoutPattern(num_units=0, dp=1, bias=0)
        with pytest.raises(ValueError):
            RowDropoutPattern(num_units=8, dp=0, bias=0)
        with pytest.raises(ValueError):
            RowDropoutPattern(num_units=8, dp=3, bias=3)

    def test_period_one_keeps_everything(self):
        pattern = RowDropoutPattern(num_units=10, dp=1, bias=0)
        assert pattern.num_kept == 10
        assert pattern.drop_rate == 0.0
        assert np.all(pattern.mask() == 1.0)

    def test_paper_example_drop_two_of_three(self):
        """dp=3: two of every three successive rows are dropped (Fig. 3(a))."""
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=0)
        assert list(pattern.kept_indices) == [0, 3, 6]
        assert pattern.drop_rate == pytest.approx(2 / 3)

    def test_bias_shifts_kept_rows(self):
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=1)
        assert list(pattern.kept_indices) == [1, 4, 7]

    def test_kept_and_dropped_partition(self):
        pattern = RowDropoutPattern(num_units=11, dp=4, bias=2)
        all_indices = sorted(list(pattern.kept_indices) + list(pattern.dropped_indices))
        assert all_indices == list(range(11))

    def test_mask_matches_kept_indices(self):
        pattern = RowDropoutPattern(num_units=13, dp=5, bias=3)
        mask = pattern.mask()
        assert np.allclose(np.nonzero(mask)[0], pattern.kept_indices)

    def test_row_pattern_mask_function(self):
        assert np.allclose(row_pattern_mask(6, 2, 0), [1, 0, 1, 0, 1, 0])
        assert np.allclose(row_pattern_mask(6, 2, 1), [0, 1, 0, 1, 0, 1])

    def test_compact_and_expand_roundtrip(self, rng):
        pattern = RowDropoutPattern(num_units=12, dp=3, bias=1)
        matrix = rng.normal(size=(12, 5))
        compact = pattern.compact_rows(matrix)
        assert compact.shape == (4, 5)
        expanded = pattern.expand_rows(compact)
        assert np.allclose(expanded[pattern.kept_indices], matrix[pattern.kept_indices])
        assert np.allclose(expanded[pattern.dropped_indices], 0.0)

    def test_compact_and_expand_cols(self, rng):
        pattern = RowDropoutPattern(num_units=8, dp=2, bias=0)
        matrix = rng.normal(size=(3, 8))
        compact = pattern.compact_cols(matrix)
        assert compact.shape == (3, 4)
        expanded = pattern.expand_cols(compact)
        assert np.allclose(expanded[:, pattern.kept_indices], compact)

    def test_describe(self):
        text = RowDropoutPattern(num_units=8, dp=2, bias=0).describe()
        assert "dp=2" in text and "units=8" in text

    def test_max_row_patterns(self):
        assert max_row_patterns(100) == 100
        with pytest.raises(ValueError):
            max_row_patterns(0)


class TestTilePatternBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            TileDropoutPattern(rows=0, cols=4, dp=1, bias=0)
        with pytest.raises(ValueError):
            TileDropoutPattern(rows=4, cols=4, dp=2, bias=2)
        with pytest.raises(ValueError):
            TileDropoutPattern(rows=4, cols=4, dp=1, bias=0, tile=0)

    def test_tile_grid_and_count(self):
        pattern = TileDropoutPattern(rows=64, cols=96, dp=1, bias=0, tile=32)
        assert pattern.tile_grid == (2, 3)
        assert pattern.num_tiles == 6

    def test_partial_edge_tiles_counted(self):
        pattern = TileDropoutPattern(rows=40, cols=50, dp=1, bias=0, tile=32)
        assert pattern.tile_grid == (2, 2)

    def test_paper_example_drop_three_of_four(self):
        """dp=4: three of every four tiles are dropped (Fig. 3(b))."""
        pattern = TileDropoutPattern(rows=64, cols=64, dp=4, bias=0, tile=32)
        assert pattern.num_tiles == 4
        assert list(pattern.kept_tile_ids) == [0]
        assert pattern.drop_rate == pytest.approx(0.75)

    def test_mask_block_structure(self):
        pattern = TileDropoutPattern(rows=4, cols=4, dp=2, bias=0, tile=2)
        mask = pattern.mask()
        # tiles 0 and 2 kept (row-major): top-left and bottom-left blocks
        assert np.allclose(mask[:2, :2], 1.0)
        assert np.allclose(mask[:2, 2:], 0.0)
        assert np.allclose(mask[2:, :2], 1.0)
        assert np.allclose(mask[2:, 2:], 0.0)

    def test_tile_bounds(self):
        pattern = TileDropoutPattern(rows=5, cols=5, dp=1, bias=0, tile=3)
        row_slice, col_slice = pattern.tile_bounds(3)
        assert (row_slice.start, row_slice.stop) == (3, 5)
        assert (col_slice.start, col_slice.stop) == (3, 5)
        with pytest.raises(IndexError):
            pattern.tile_bounds(99)

    def test_apply_mask_requires_matching_shape(self, rng):
        pattern = TileDropoutPattern(rows=4, cols=6, dp=2, bias=0, tile=2)
        with pytest.raises(ValueError):
            pattern.apply_mask(rng.normal(size=(3, 3)))

    def test_block_sparse_matmul_matches_dense_masked(self, rng):
        pattern = TileDropoutPattern(rows=10, cols=14, dp=3, bias=1, tile=4)
        weight = rng.normal(size=(10, 14))
        x = rng.normal(size=(6, 14))
        dense = x @ (weight * pattern.mask()).T
        assert np.allclose(pattern.block_sparse_matmul(x, weight), dense)

    def test_block_sparse_matmul_validates_input_width(self, rng):
        pattern = TileDropoutPattern(rows=4, cols=6, dp=2, bias=0, tile=2)
        with pytest.raises(ValueError):
            pattern.block_sparse_matmul(rng.normal(size=(3, 5)), rng.normal(size=(4, 6)))

    def test_kept_tiles_shapes(self, rng):
        pattern = TileDropoutPattern(rows=6, cols=6, dp=2, bias=1, tile=3)
        weight = rng.normal(size=(6, 6))
        blocks = pattern.kept_tiles(weight)
        assert len(blocks) == pattern.num_kept_tiles
        for row_slice, col_slice, block in blocks:
            assert block.shape == (row_slice.stop - row_slice.start,
                                   col_slice.stop - col_slice.start)

    def test_max_tile_patterns(self):
        assert max_tile_patterns(64, 64, tile=32) == 4
        assert max_tile_patterns(16, 16, tile=32) == 1
        with pytest.raises(ValueError):
            max_tile_patterns(0, 4)


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(num_units=st.integers(1, 200), dp=st.integers(1, 30), bias_seed=st.integers(0, 10_000))
def test_row_pattern_invariants(num_units, dp, bias_seed):
    """For any valid (num_units, dp, bias): partition, count and rate invariants."""
    dp = min(dp, num_units)
    bias = bias_seed % dp
    pattern = RowDropoutPattern(num_units=num_units, dp=dp, bias=bias)
    kept = pattern.kept_indices
    # Every kept index is in range and congruent to the bias.
    assert np.all((kept >= 0) & (kept < num_units))
    assert np.all(kept % dp == bias)
    # Kept count equals ceil over the arithmetic progression, and masks agree.
    assert pattern.num_kept == len(np.arange(bias, num_units, dp))
    assert pattern.mask().sum() == pattern.num_kept
    assert 0.0 <= pattern.drop_rate < 1.0
    # keep_fraction is within 1/num_units of 1/dp.
    assert abs(pattern.keep_fraction - 1.0 / dp) <= 1.0 / num_units


@settings(max_examples=60, deadline=None)
@given(num_units=st.integers(2, 64), dp=st.integers(2, 8))
def test_row_pattern_every_unit_kept_in_exactly_one_bias(num_units, dp):
    """Across all biases of a period, each neuron is kept exactly once.

    This is the fact behind Eq. 2: under a uniform bias, a neuron's drop
    probability for period dp is exactly (dp-1)/dp.
    """
    dp = min(dp, num_units)
    kept_count = np.zeros(num_units)
    for bias in range(dp):
        kept_count += RowDropoutPattern(num_units, dp, bias).mask()
    assert np.allclose(kept_count, 1.0)


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(1, 80), cols=st.integers(1, 80), dp=st.integers(1, 10),
       bias_seed=st.integers(0, 10_000), tile=st.sampled_from([2, 4, 8, 32]))
def test_tile_pattern_invariants(rows, cols, dp, bias_seed, tile):
    reference = TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0, tile=tile)
    dp = min(dp, reference.num_tiles)
    bias = bias_seed % dp
    pattern = TileDropoutPattern(rows=rows, cols=cols, dp=dp, bias=bias, tile=tile)
    mask = pattern.mask()
    assert mask.shape == (rows, cols)
    assert set(np.unique(mask)).issubset({0.0, 1.0})
    assert pattern.num_kept_tiles == len(pattern.kept_tile_ids)
    assert 0.0 <= pattern.drop_rate < 1.0
    # The union of tile bounds of kept tiles covers exactly the mask's ones.
    covered = np.zeros((rows, cols))
    for tile_id in pattern.kept_tile_ids:
        row_slice, col_slice = pattern.tile_bounds(int(tile_id))
        covered[row_slice, col_slice] = 1.0
    assert np.allclose(covered, mask)


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(2, 40), cols=st.integers(2, 40), dp=st.integers(1, 6),
       batch=st.integers(1, 5), seed=st.integers(0, 1000))
def test_block_sparse_matmul_always_matches_masked_dense(rows, cols, dp, batch, seed):
    local_rng = np.random.default_rng(seed)
    reference = TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0, tile=4)
    dp = min(dp, reference.num_tiles)
    pattern = TileDropoutPattern(rows=rows, cols=cols, dp=dp, bias=dp - 1, tile=4)
    weight = local_rng.normal(size=(rows, cols))
    x = local_rng.normal(size=(batch, cols))
    assert np.allclose(pattern.block_sparse_matmul(x, weight),
                       x @ (weight * pattern.mask()).T)


def test_tile_pattern_mask_function_matches_class():
    assert np.allclose(tile_pattern_mask(6, 6, 2, 0, tile=3),
                       TileDropoutPattern(6, 6, 2, 0, tile=3).mask())


class TestMaskDtypeRouting:
    """Satellite fix: mask construction honours a requested dtype end to end."""

    def test_row_mask_dtype(self):
        from repro.dropout import row_pattern_mask

        assert row_pattern_mask(8, 2, 0).dtype == np.float64
        assert row_pattern_mask(8, 2, 0, dtype=np.float32).dtype == np.float32

    def test_tile_mask_dtype(self):
        from repro.dropout import tile_pattern_mask

        assert tile_pattern_mask(8, 8, 2, 0, tile=4).dtype == np.float64
        assert tile_pattern_mask(8, 8, 2, 0, tile=4,
                                 dtype=np.float32).dtype == np.float32

    def test_batched_masks_dtype(self):
        from repro.dropout import row_pattern_masks

        masks = row_pattern_masks(6, np.array([2, 3]), np.array([0, 1]),
                                  dtype=np.float32)
        assert masks.dtype == np.float32

    def test_pattern_mask_cached_per_dtype(self):
        pattern = RowDropoutPattern(num_units=10, dp=2, bias=0)
        m64 = pattern.mask()
        m32 = pattern.mask(dtype=np.float32)
        assert m64.dtype == np.float64 and m32.dtype == np.float32
        assert pattern.mask(dtype=np.float32) is m32  # cached
        assert pattern.mask() is m64
        assert not m32.flags.writeable
        np.testing.assert_array_equal(m64, m32.astype(np.float64))

    def test_tile_pattern_mask_cached_per_dtype(self):
        pattern = TileDropoutPattern(rows=8, cols=8, dp=2, bias=1, tile=4)
        m32 = pattern.mask(dtype=np.float32)
        assert m32.dtype == np.float32
        assert pattern.mask(dtype=np.float32) is m32
        np.testing.assert_array_equal(pattern.mask(), m32.astype(np.float64))
