"""Tests for the compact GEMM ops and the approximate-dropout layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dropout import (
    ApproxBlockDropout,
    ApproxDropConnectLinear,
    ApproxRandomDropout,
    ApproxRandomDropoutLinear,
    RowDropoutPattern,
    TileDropoutPattern,
)
from repro.dropout.compact_ops import (
    dense_masked_linear_reference,
    row_compact_linear,
    tile_compact_linear,
)
from repro.tensor import Tensor, check_gradients


def make_linear_inputs(rng, batch=4, in_features=7, out_features=9):
    x = Tensor(rng.normal(size=(batch, in_features)), requires_grad=True)
    weight = Tensor(rng.normal(size=(out_features, in_features)), requires_grad=True)
    bias = Tensor(rng.normal(size=out_features), requires_grad=True)
    return x, weight, bias


class TestRowCompactLinear:
    def test_matches_dense_masked_reference(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=1)
        out = row_compact_linear(x, weight, bias, pattern, scale_factor=1.0)
        reference = dense_masked_linear_reference(
            x.data, weight.data, bias.data, pattern.mask(), 1.0, mask_axis="rows")
        assert np.allclose(out.data, reference)

    def test_scale_factor_applied_to_kept_rows_only(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=0)
        out = row_compact_linear(x, weight, bias, pattern, scale_factor=2.0)
        unscaled = row_compact_linear(x, weight, bias, pattern, scale_factor=1.0)
        assert np.allclose(out.data, unscaled.data * 2.0)
        assert np.allclose(out.data[:, pattern.dropped_indices], 0.0)

    def test_input_pattern_compaction_is_equivalent_when_inputs_already_zero(self, rng):
        """Skipping dropped input columns changes nothing when those inputs are zero."""
        input_pattern = RowDropoutPattern(num_units=7, dp=2, bias=0)
        x_raw = rng.normal(size=(5, 7)) * input_pattern.mask()  # dropped inputs zeroed
        x = Tensor(x_raw, requires_grad=True)
        weight = Tensor(rng.normal(size=(9, 7)), requires_grad=True)
        bias = Tensor(rng.normal(size=9), requires_grad=True)
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=2)
        chained = row_compact_linear(x, weight, bias, pattern, input_pattern=input_pattern)
        unchained = row_compact_linear(x, weight, bias, pattern)
        assert np.allclose(chained.data, unchained.data)

    def test_gradcheck_without_input_pattern(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = RowDropoutPattern(num_units=9, dp=4, bias=1)
        check_gradients(
            lambda: (row_compact_linear(x, weight, bias, pattern, scale_factor=1.5) ** 2).sum(),
            [x, weight, bias])

    def test_gradcheck_with_input_pattern(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=0)
        input_pattern = RowDropoutPattern(num_units=7, dp=2, bias=1)
        check_gradients(
            lambda: (row_compact_linear(x, weight, bias, pattern,
                                        input_pattern=input_pattern) ** 2).sum(),
            [x, weight, bias])

    def test_dropped_rows_receive_zero_gradient(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=0)
        row_compact_linear(x, weight, bias, pattern).sum().backward()
        assert np.allclose(weight.grad[pattern.dropped_indices], 0.0)
        assert np.allclose(bias.grad[pattern.dropped_indices], 0.0)
        assert np.any(weight.grad[pattern.kept_indices] != 0.0)

    def test_no_bias(self, rng):
        x, weight, _ = make_linear_inputs(rng)
        pattern = RowDropoutPattern(num_units=9, dp=2, bias=0)
        out = row_compact_linear(x, weight, None, pattern)
        assert out.shape == (4, 9)

    def test_shape_validation(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        with pytest.raises(ValueError):
            row_compact_linear(x, weight, bias, RowDropoutPattern(5, 2, 0))
        with pytest.raises(ValueError):
            row_compact_linear(Tensor(rng.normal(size=(3,))), weight, bias,
                               RowDropoutPattern(9, 2, 0))
        with pytest.raises(ValueError):
            row_compact_linear(x, weight, bias, RowDropoutPattern(9, 2, 0),
                               input_pattern=RowDropoutPattern(3, 2, 0))


class TestTileCompactLinear:
    def test_matches_dense_masked_reference(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = TileDropoutPattern(rows=9, cols=7, dp=3, bias=1, tile=3)
        out = tile_compact_linear(x, weight, bias, pattern, scale_factor=1.0)
        reference = dense_masked_linear_reference(
            x.data, weight.data, bias.data, pattern.mask(), 1.0, mask_axis="weight")
        assert np.allclose(out.data, reference)

    def test_gradcheck(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = TileDropoutPattern(rows=9, cols=7, dp=2, bias=0, tile=4)
        check_gradients(
            lambda: (tile_compact_linear(x, weight, bias, pattern, scale_factor=1.3) ** 2).sum(),
            [x, weight, bias])

    def test_dropped_tiles_receive_zero_gradient(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = TileDropoutPattern(rows=9, cols=7, dp=2, bias=1, tile=3)
        tile_compact_linear(x, weight, bias, pattern).sum().backward()
        assert np.allclose(weight.grad[pattern.mask() == 0.0], 0.0)

    def test_bias_never_dropped(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        pattern = TileDropoutPattern(rows=9, cols=7, dp=9, bias=0, tile=3)
        tile_compact_linear(x, weight, bias, pattern).sum().backward()
        assert np.allclose(bias.grad, x.shape[0])

    def test_shape_validation(self, rng):
        x, weight, bias = make_linear_inputs(rng)
        with pytest.raises(ValueError):
            tile_compact_linear(x, weight, bias, TileDropoutPattern(5, 7, 2, 0, tile=3))

    def test_reference_invalid_axis(self, rng):
        with pytest.raises(ValueError):
            dense_masked_linear_reference(rng.normal(size=(2, 3)), rng.normal(size=(4, 3)),
                                          None, np.ones(4), mask_axis="bogus")


class TestApproxRandomDropoutLayer:
    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxRandomDropout(0, 0.5)
        with pytest.raises(ValueError):
            ApproxRandomDropout(8, 1.0)

    def test_zero_rate_identity(self, rng):
        layer = ApproxRandomDropout(8, 0.0, rng=rng)
        x = Tensor(rng.normal(size=(3, 8)))
        assert layer(x) is x

    def test_training_applies_row_mask(self, rng):
        layer = ApproxRandomDropout(16, 0.5, rng=rng)
        layer.set_pattern(RowDropoutPattern(16, dp=2, bias=0))
        out = layer(Tensor(np.ones((4, 16))))
        assert np.allclose(out.data[:, 1::2], 0.0)
        assert np.allclose(out.data[:, 0::2], 1.0)

    def test_eval_rescales_by_keep_probability(self, rng):
        layer = ApproxRandomDropout(16, 0.5, rng=rng)
        layer.eval()
        out = layer(Tensor(np.ones((2, 16))))
        assert np.allclose(out.data, 0.5)

    def test_set_pattern_validates_width(self, rng):
        layer = ApproxRandomDropout(16, 0.5, rng=rng)
        with pytest.raises(ValueError):
            layer.set_pattern(RowDropoutPattern(8, dp=2, bias=0))

    def test_resample_changes_pattern(self, rng):
        layer = ApproxRandomDropout(64, 0.5, rng=rng)
        seen = {(layer.resample().dp, layer.pattern.bias) for _ in range(30)}
        assert len(seen) > 1


class TestApproxBlockDropout:
    def test_block_structure(self, rng):
        layer = ApproxBlockDropout(8, 0.5, block=2, rng=rng)
        layer.pattern = RowDropoutPattern(4, dp=2, bias=0)  # blocks 0 and 2 kept
        mask = layer.unit_mask()
        assert np.allclose(mask, [1, 1, 0, 0, 1, 1, 0, 0])

    def test_eval_rescale(self, rng):
        layer = ApproxBlockDropout(8, 0.25, block=2, rng=rng)
        layer.eval()
        assert np.allclose(layer(Tensor(np.ones((1, 8)))).data, 0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxBlockDropout(8, 0.5, block=0)


class TestApproxRandomDropoutLinearLayer:
    def test_eval_is_scaled_dense_linear(self, rng):
        layer = ApproxRandomDropoutLinear(6, 8, drop_rate=0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(3, 6)))
        expected = (x.data @ layer.weight.data.T + layer.bias.data) * 0.5
        assert np.allclose(layer(x).data, expected)

    def test_training_output_has_zero_dropped_rows(self, rng):
        layer = ApproxRandomDropoutLinear(6, 9, drop_rate=0.5, rng=rng)
        layer.set_pattern(RowDropoutPattern(9, dp=3, bias=1))
        out = layer(Tensor(rng.normal(size=(4, 6))))
        assert np.allclose(out.data[:, layer.pattern.dropped_indices], 0.0)

    def test_resample_draws_fresh_patterns(self, rng):
        layer = ApproxRandomDropoutLinear(6, 64, drop_rate=0.5, rng=rng)
        seen = {(layer.resample().dp, layer.pattern.bias) for _ in range(30)}
        assert len(seen) > 1

    def test_parameters_registered(self, rng):
        layer = ApproxRandomDropoutLinear(6, 8, drop_rate=0.5, rng=rng)
        assert len(layer.parameters()) == 2

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ApproxRandomDropoutLinear(4, 4, drop_rate=1.2)

    def test_backward_trains_only_kept_rows(self, rng):
        layer = ApproxRandomDropoutLinear(6, 9, drop_rate=0.5, rng=rng)
        layer.set_pattern(RowDropoutPattern(9, dp=3, bias=0))
        layer(Tensor(rng.normal(size=(4, 6)))).sum().backward()
        assert np.allclose(layer.weight.grad[layer.pattern.dropped_indices], 0.0)


class TestApproxDropConnectLinearLayer:
    def test_eval_rescales_weight_not_bias(self, rng):
        layer = ApproxDropConnectLinear(6, 8, drop_rate=0.5, tile=2, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(3, 6)))
        expected = x.data @ (layer.weight.data * 0.5).T + layer.bias.data
        assert np.allclose(layer(x).data, expected)

    def test_training_uses_tile_pattern(self, rng):
        layer = ApproxDropConnectLinear(6, 8, drop_rate=0.5, tile=2, rng=rng)
        pattern = TileDropoutPattern(rows=8, cols=6, dp=2, bias=0, tile=2)
        layer.set_pattern(pattern)
        x = Tensor(rng.normal(size=(3, 6)))
        expected = x.data @ (layer.weight.data * pattern.mask()).T + layer.bias.data
        assert np.allclose(layer(x).data, expected)

    def test_set_pattern_validates_shape(self, rng):
        layer = ApproxDropConnectLinear(6, 8, drop_rate=0.5, tile=2, rng=rng)
        with pytest.raises(ValueError):
            layer.set_pattern(TileDropoutPattern(rows=4, cols=6, dp=2, bias=0, tile=2))

    def test_zero_rate_is_dense(self, rng):
        layer = ApproxDropConnectLinear(6, 8, drop_rate=0.0, tile=2, rng=rng)
        x = Tensor(rng.normal(size=(3, 6)))
        assert np.allclose(layer(x).data, x.data @ layer.weight.data.T + layer.bias.data)


@settings(max_examples=25, deadline=None)
@given(out_features=st.integers(3, 20), in_features=st.integers(3, 20),
       dp=st.integers(1, 6), seed=st.integers(0, 500))
def test_row_compact_equals_masked_dense_property(out_features, in_features, dp, seed):
    """Property: compact-GEMM forward == dense GEMM followed by row masking."""
    local_rng = np.random.default_rng(seed)
    dp = min(dp, out_features)
    pattern = RowDropoutPattern(out_features, dp=dp, bias=seed % dp)
    x = Tensor(local_rng.normal(size=(3, in_features)))
    weight = Tensor(local_rng.normal(size=(out_features, in_features)))
    bias = Tensor(local_rng.normal(size=out_features))
    compact = row_compact_linear(x, weight, bias, pattern)
    dense = dense_masked_linear_reference(x.data, weight.data, bias.data,
                                          pattern.mask(), 1.0, mask_axis="rows")
    assert np.allclose(compact.data, dense)


class TestInputCompactLinear:
    """The consumer-GEMM compaction used by the LSTM projection fast path."""

    def _masked_input(self, rng, pattern, batch=4):
        x = Tensor(rng.normal(size=(batch, pattern.num_units)) * pattern.mask()[None, :],
                   requires_grad=True)
        return x

    def test_matches_dense_on_masked_input(self, rng):
        from repro.dropout.compact_ops import input_compact_linear

        pattern = RowDropoutPattern(num_units=12, dp=3, bias=2)
        x = self._masked_input(rng, pattern)
        weight = Tensor(rng.normal(size=(5, 12)), requires_grad=True)
        bias = Tensor(rng.normal(size=5), requires_grad=True)
        out = input_compact_linear(x, weight, bias, pattern)
        dense = x.data @ weight.data.T + bias.data
        assert np.allclose(out.data, dense)

    def test_gradients_match_numerical(self, rng):
        from repro.dropout.compact_ops import input_compact_linear

        pattern = RowDropoutPattern(num_units=8, dp=2, bias=0)
        x = self._masked_input(rng, pattern, batch=3)
        weight = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        bias = Tensor(rng.normal(size=4), requires_grad=True)

        check_gradients(
            lambda: (input_compact_linear(x, weight, bias, pattern) ** 2).sum(),
            [x, weight, bias])

    def test_dropped_columns_get_zero_gradient(self, rng):
        from repro.dropout.compact_ops import input_compact_linear

        pattern = RowDropoutPattern(num_units=10, dp=5, bias=3)
        x = self._masked_input(rng, pattern)
        weight = Tensor(rng.normal(size=(6, 10)), requires_grad=True)
        out = input_compact_linear(x, weight, None, pattern)
        out.sum().backward()
        dropped = pattern.dropped_indices
        assert np.all(x.grad[:, dropped] == 0)
        assert np.all(weight.grad[:, dropped] == 0)
        kept = pattern.kept_indices
        assert np.any(weight.grad[:, kept] != 0)

    def test_shape_validation(self, rng):
        from repro.dropout.compact_ops import input_compact_linear

        pattern = RowDropoutPattern(num_units=9, dp=3, bias=0)
        x = Tensor(rng.normal(size=(4, 7)), requires_grad=True)
        weight = Tensor(rng.normal(size=(5, 7)), requires_grad=True)
        with pytest.raises(ValueError):
            input_compact_linear(x, weight, None, pattern)

    def test_float32_stays_float32(self, rng):
        from repro.dropout.compact_ops import input_compact_linear

        pattern = RowDropoutPattern(num_units=8, dp=2, bias=0)
        x = Tensor(rng.normal(size=(3, 8)), requires_grad=True, dtype=np.float32)
        weight = Tensor(rng.normal(size=(4, 8)), requires_grad=True, dtype=np.float32)
        bias = Tensor(np.zeros(4), requires_grad=True, dtype=np.float32)
        out = input_compact_linear(x, weight, bias, pattern)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        assert weight.grad.dtype == np.float32


class TestMaskedExecutionMode:
    """The Fig. 1(a) dense-masked execution path of the pattern layers."""

    def test_row_linear_masked_matches_compact(self, rng):
        layers = [ApproxRandomDropoutLinear(7, 9, 0.5, rng=np.random.default_rng(5))
                  for _ in range(2)]
        pattern = RowDropoutPattern(num_units=9, dp=3, bias=1)
        x = Tensor(rng.normal(size=(4, 7)))
        for layer, mode in zip(layers, ("masked", "compact")):
            layer.execution_mode = mode
            layer.set_pattern(pattern)
        assert np.allclose(layers[0](x).data, layers[1](x).data)

    def test_activation_dropout_masked_matches_compact(self, rng):
        layers = [ApproxRandomDropout(12, 0.5, rng=np.random.default_rng(5))
                  for _ in range(2)]
        pattern = RowDropoutPattern(num_units=12, dp=2, bias=1)
        x = Tensor(rng.normal(size=(4, 12)))
        for layer, mode in zip(layers, ("masked", "compact")):
            layer.execution_mode = mode
            layer.set_pattern(pattern)
        assert np.allclose(layers[0](x).data, layers[1](x).data)

    def test_use_workspace_toggle(self, rng):
        layer = ApproxRandomDropoutLinear(7, 9, 0.5, rng=np.random.default_rng(5))
        layer.use_workspace = False
        x = Tensor(rng.normal(size=(4, 7)), requires_grad=True)
        layer(x).sum().backward()
        assert layer.workspace.num_buffers == 0  # never touched
        layer.use_workspace = True
        layer.set_pattern(layer.pattern)  # reset the per-pattern forward count
        layer(x).sum().backward()
        assert layer.workspace.num_buffers > 0
