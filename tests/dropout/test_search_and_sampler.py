"""Tests for Algorithm 1 (distribution search), the sampler and the statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dropout import (
    PatternDistributionSearch,
    PatternSampler,
    PatternSchedule,
    RowDropoutPattern,
    TileDropoutPattern,
    empirical_unit_drop_rate,
    equivalence_report,
    expected_global_drop_rate,
    pattern_drop_rates,
    sub_model_count,
)
from repro.dropout.layers import default_max_period


class TestPatternDropRates:
    def test_values(self):
        rates = pattern_drop_rates(4)
        assert np.allclose(rates, [0.0, 0.5, 2 / 3, 0.75])

    def test_invalid(self):
        with pytest.raises(ValueError):
            pattern_drop_rates(0)


class TestSearchValidation:
    def test_lambda_sum_constraint(self):
        with pytest.raises(ValueError):
            PatternDistributionSearch(max_period=8, lambda_rate=0.5, lambda_entropy=0.1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PatternDistributionSearch(max_period=0)
        with pytest.raises(ValueError):
            PatternDistributionSearch(max_period=8, learning_rate=0.0)
        with pytest.raises(ValueError):
            PatternDistributionSearch(max_period=8, max_iterations=0)

    def test_target_rate_out_of_range(self):
        search = PatternDistributionSearch(max_period=8)
        with pytest.raises(ValueError):
            search.search(1.0)
        with pytest.raises(ValueError):
            search.search(-0.1)

    def test_unreachable_rate_raises(self):
        search = PatternDistributionSearch(max_period=2)  # max achievable 0.5
        with pytest.raises(ValueError):
            search.search(0.8)


class TestSearchBehaviour:
    @pytest.mark.parametrize("target", [0.3, 0.5, 0.7])
    def test_achieves_target_rate(self, target):
        result = PatternDistributionSearch(max_period=16).search(target)
        assert result.rate_error() < 0.02
        assert np.isclose(result.distribution.sum(), 1.0)
        assert np.all(result.distribution >= 0)

    def test_converges_for_moderate_rates(self):
        result = PatternDistributionSearch(max_period=16).search(0.5)
        assert result.converged
        assert result.iterations < 20000

    def test_loss_history_decreases_overall(self):
        result = PatternDistributionSearch(max_period=16).search(0.6)
        assert result.loss_history[-1] <= result.loss_history[0]

    def test_zero_rate_concentrates_on_period_one(self):
        result = PatternDistributionSearch(max_period=8).search(0.0)
        assert result.distribution[0] > 0.5
        assert result.achieved_rate < 0.1

    def test_entropy_weight_increases_diversity(self):
        low = PatternDistributionSearch(max_period=16, lambda_rate=0.99,
                                        lambda_entropy=0.01).search(0.5)
        high = PatternDistributionSearch(max_period=16, lambda_rate=0.7,
                                         lambda_entropy=0.3).search(0.5)
        assert high.entropy >= low.entropy - 1e-6

    def test_loss_method_matches_internal(self):
        search = PatternDistributionSearch(max_period=8)
        result = search.search(0.4)
        direct = search.loss(result.distribution, 0.4)
        assert np.isfinite(direct)
        assert direct == pytest.approx(result.loss_history[-1], abs=1e-3)

    def test_search_many(self):
        results = PatternDistributionSearch(max_period=8).search_many([0.3, 0.5])
        assert set(results) == {0.3, 0.5}

    def test_effective_sub_models_positive(self):
        result = PatternDistributionSearch(max_period=16).search(0.5)
        assert result.effective_sub_models() > 1.0

    def test_deterministic_given_seed(self):
        a = PatternDistributionSearch(max_period=8, seed=3).search(0.5)
        b = PatternDistributionSearch(max_period=8, seed=3).search(0.5)
        assert np.allclose(a.distribution, b.distribution)


class TestPatternSampler:
    def test_sample_period_within_range(self, rng):
        sampler = PatternSampler(0.5, max_period=8, rng=rng)
        for _ in range(50):
            assert 1 <= sampler.sample_period() <= 8

    def test_sample_bias_uniform_range(self, rng):
        sampler = PatternSampler(0.5, max_period=8, rng=rng)
        biases = {sampler.sample_bias(4) for _ in range(200)}
        assert biases == {0, 1, 2, 3}

    def test_sample_bias_invalid(self, rng):
        with pytest.raises(ValueError):
            PatternSampler(0.5, 8, rng=rng).sample_bias(0)

    def test_sample_row_pattern_caps_period_at_width(self, rng):
        sampler = PatternSampler(0.5, max_period=8, rng=rng)
        pattern = sampler.sample_row_pattern(num_units=3)
        assert isinstance(pattern, RowDropoutPattern)
        assert pattern.dp <= 3

    def test_sample_tile_pattern(self, rng):
        sampler = PatternSampler(0.5, max_period=8, rng=rng)
        pattern = sampler.sample_tile_pattern(rows=64, cols=64, tile=32)
        assert isinstance(pattern, TileDropoutPattern)
        assert pattern.dp <= pattern.num_tiles

    def test_expected_drop_rate_matches_target(self, rng):
        sampler = PatternSampler(0.6, max_period=16, rng=rng)
        assert abs(sampler.expected_drop_rate() - 0.6) < 0.02

    def test_mean_sampled_rate_matches_target(self, rng):
        sampler = PatternSampler(0.5, max_period=8, rng=rng)
        rates = [sampler.sample_row_pattern(128).drop_rate for _ in range(800)]
        assert abs(np.mean(rates) - 0.5) < 0.05

    def test_search_result_cached(self, rng):
        sampler = PatternSampler(0.5, max_period=8, rng=rng)
        assert sampler.result is sampler.result


class TestPatternSchedule:
    def test_register_and_resample(self, rng):
        schedule = PatternSchedule(rng=rng)
        schedule.register_row_site("fc1", num_units=64, target_rate=0.5)
        schedule.register_tile_site("fc2", rows=64, cols=64, target_rate=0.5)
        patterns = schedule.resample()
        assert set(patterns) == {"fc1", "fc2"}
        assert isinstance(schedule.current("fc1"), RowDropoutPattern)
        assert isinstance(schedule.current("fc2"), TileDropoutPattern)
        assert len(schedule) == 2
        assert schedule.iteration == 1

    def test_duplicate_site_rejected(self, rng):
        schedule = PatternSchedule(rng=rng)
        schedule.register_row_site("fc1", num_units=8, target_rate=0.5)
        with pytest.raises(ValueError):
            schedule.register_row_site("fc1", num_units=8, target_rate=0.5)

    def test_unknown_site(self, rng):
        with pytest.raises(KeyError):
            PatternSchedule(rng=rng).current("missing")

    def test_current_before_resample_raises(self, rng):
        schedule = PatternSchedule(rng=rng)
        schedule.register_row_site("fc1", num_units=8, target_rate=0.5)
        with pytest.raises(RuntimeError):
            schedule.current("fc1")

    def test_resample_changes_patterns_over_time(self, rng):
        schedule = PatternSchedule(rng=rng)
        schedule.register_row_site("fc1", num_units=64, target_rate=0.5)
        seen = set()
        for _ in range(30):
            pattern = schedule.resample()["fc1"]
            seen.add((pattern.dp, pattern.bias))
        assert len(seen) > 1


class TestStatistics:
    def test_expected_global_drop_rate(self):
        # All mass on period 2 -> rate 0.5 exactly.
        assert expected_global_drop_rate(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_sub_model_count(self):
        assert sub_model_count(4) == 10
        assert sub_model_count(2048, max_period=8) == 36

    def test_empirical_unit_drop_rate_matches_target(self, rng):
        sampler = PatternSampler(0.5, max_period=8, rng=rng)
        rates = empirical_unit_drop_rate(sampler, num_units=64, iterations=1200)
        assert rates.shape == (64,)
        assert abs(rates.mean() - 0.5) < 0.05

    def test_empirical_invalid_iterations(self, rng):
        with pytest.raises(ValueError):
            empirical_unit_drop_rate(PatternSampler(0.5, 8, rng=rng), 8, iterations=0)

    def test_equivalence_report(self, rng):
        sampler = PatternSampler(0.3, max_period=8, rng=rng)
        report = equivalence_report(sampler, num_units=64, iterations=1000)
        assert report.is_equivalent(tolerance=0.06)
        assert report.effective_sub_models > 1.0
        assert report.analytic_unit_rate == pytest.approx(report.analytic_global_rate)


class TestDefaultMaxPeriod:
    def test_zero_rate(self):
        assert default_max_period(0.0, 100) == 1

    @pytest.mark.parametrize("rate", [0.3, 0.5, 0.7, 0.9])
    def test_can_express_rate(self, rate):
        period = default_max_period(rate, 4096)
        assert (period - 1) / period > rate or period >= 3

    def test_clipped_by_available(self):
        assert default_max_period(0.7, 2) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_max_period(1.5, 10)
        with pytest.raises(ValueError):
            default_max_period(0.5, 0)


@settings(max_examples=25, deadline=None)
@given(target=st.floats(0.05, 0.8), max_period=st.integers(6, 24))
def test_search_rate_error_bounded_property(target, max_period):
    """For any reasonable target and period budget the achieved rate is close."""
    result = PatternDistributionSearch(max_period=max_period,
                                       max_iterations=4000).search(target)
    assert result.rate_error() < 0.05
    assert np.isclose(result.distribution.sum(), 1.0)
