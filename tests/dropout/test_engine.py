"""Tests for the vectorized pattern-pool execution engine.

Covers pattern interning, :class:`PatternPool` consumption/refill semantics,
the module-bound pooled :class:`PatternSchedule` (including the trainer fall
back for strategies without pattern sites), and the layers' pool-draw hooks.
"""

import numpy as np
import pytest

from repro.dropout import (
    ApproxBlockDropout,
    ApproxDropConnectLinear,
    ApproxRandomDropout,
    ApproxRandomDropoutLinear,
    PatternPool,
    PatternSampler,
    PatternSchedule,
    RowDropoutPattern,
    row_pattern,
    tile_pattern,
)
from repro.models import MLPClassifier, MLPConfig, LSTMConfig, LSTMLanguageModel
from repro.tensor import Tensor


class TestPatternInterning:
    def test_row_pattern_interned(self):
        assert row_pattern(64, 4, 1) is row_pattern(64, 4, 1)
        assert row_pattern(64, 4, 1) is not row_pattern(64, 4, 2)

    def test_tile_pattern_interned(self):
        assert tile_pattern(64, 64, 2, 0, 32) is tile_pattern(64, 64, 2, 0, 32)

    def test_interned_pattern_caches_derived_data(self):
        pattern = row_pattern(128, 4, 1)
        assert pattern.kept_indices is pattern.kept_indices
        assert pattern.mask() is pattern.mask()
        assert not pattern.mask().flags.writeable

    def test_sampler_returns_interned_patterns(self, rng):
        sampler = PatternSampler(0.5, max_period=4, rng=rng)
        draws = {id(p) for p in sampler.sample_row_patterns(32, 500)}
        # At most sum(dp) = 1+2+3+4 = 10 distinct objects regardless of count.
        assert len(draws) <= 10


class TestPatternPool:
    def make_pool(self, pool_size=16):
        sampler = PatternSampler(0.5, max_period=4, rng=np.random.default_rng(0))
        return PatternPool(lambda n: sampler.sample_row_patterns(32, n),
                           pool_size=pool_size)

    def test_pool_prefill_and_consume(self):
        pool = self.make_pool()
        pool.refill(10)
        assert len(pool) == 10
        assert pool.remaining == 10
        patterns = [pool.next() for _ in range(10)]
        assert all(isinstance(p, RowDropoutPattern) for p in patterns)
        assert pool.remaining == 0
        assert pool.consumed == 10
        assert pool.refills == 1

    def test_pool_auto_refills_when_dry(self):
        pool = self.make_pool(pool_size=4)
        for _ in range(9):
            pool.next()
        assert pool.refills == 3  # 4 + 4 + 1 consumed
        assert pool.consumed == 9

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            self.make_pool(pool_size=0)


class TestPooledSchedule:
    def test_from_model_finds_mlp_row_sites(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(32, 32), drop_rates=(0.5, 0.5),
                                        strategy="row", seed=0))
        schedule = PatternSchedule.from_model(model, pool_size=8)
        assert len(schedule.pooled_sites()) == 2
        schedule.plan(5)
        patterns = schedule.step()
        assert len(patterns) == 2
        assert schedule.iteration == 1
        # The pooled pattern was actually installed into the live layers.
        for module in model.modules():
            if isinstance(module, ApproxRandomDropoutLinear):
                assert module.pattern in patterns.values()

    def test_from_model_finds_tile_sites(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(32, 32), drop_rates=(0.5, 0.5),
                                        strategy="tile", seed=0))
        schedule = PatternSchedule.from_model(model, pool_size=8)
        assert len(schedule.pooled_sites()) == 2
        installed = schedule.step()
        for module in model.modules():
            if isinstance(module, ApproxDropConnectLinear):
                assert module.pattern in installed.values()

    def test_from_model_finds_lstm_activation_sites(self):
        model = LSTMLanguageModel(LSTMConfig(vocab_size=40, embed_size=16,
                                             hidden_size=16, num_layers=2,
                                             drop_rates=(0.5, 0.5),
                                             strategy="row", seed=0))
        schedule = PatternSchedule.from_model(model, pool_size=8)
        # input dropout + per-layer dropout + output dropout sites
        assert len(schedule.pooled_sites()) >= 3
        patterns = schedule.step()
        assert patterns

    def test_conventional_strategy_falls_back_to_resample(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(16,), drop_rates=(0.5,),
                                        strategy="original", seed=0))
        schedule = PatternSchedule.from_model(model)
        assert schedule.pooled_sites() == []
        assert schedule.step() == {}  # no error: falls back to resample_patterns

    def test_zero_rate_sites_skipped(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(16, 16), drop_rates=(0.0, 0.5),
                                        strategy="row", seed=0))
        schedule = PatternSchedule.from_model(model)
        assert len(schedule.pooled_sites()) == 1

    def test_step_advances_patterns_over_time(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(64,), drop_rates=(0.5,),
                                        strategy="row", seed=0))
        schedule = PatternSchedule.from_model(model, pool_size=64)
        schedule.plan(40)
        seen = set()
        name = schedule.pooled_sites()[0]
        for _ in range(40):
            schedule.step()
            pattern = schedule.current(name)
            seen.add((pattern.dp, pattern.bias))
        assert len(seen) > 1

    def test_pool_stats_and_plan(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(32,), drop_rates=(0.5,),
                                        strategy="row", seed=0))
        schedule = PatternSchedule.from_model(model, pool_size=4)
        schedule.plan(10)
        for _ in range(3):
            schedule.step()
        stats = schedule.pool_stats()
        (site_stats,) = stats.values()
        assert site_stats["refills"] == 1
        assert site_stats["consumed"] == 3
        assert site_stats["remaining"] == 7

    def test_attach_module_requires_pool_protocol(self):
        schedule = PatternSchedule()
        with pytest.raises(TypeError):
            schedule.attach_module("bogus", object())

    def test_duplicate_names_rejected_across_site_kinds(self, rng):
        layer = ApproxRandomDropoutLinear(8, 8, drop_rate=0.5, rng=rng)
        schedule = PatternSchedule(rng=rng)
        schedule.attach_module("shared", layer)
        with pytest.raises(ValueError):
            schedule.register_row_site("shared", num_units=8, target_rate=0.5)
        with pytest.raises(ValueError):
            schedule.attach_module("shared", layer)

    def test_mixed_descriptor_and_pooled_sites(self, rng):
        layer = ApproxRandomDropoutLinear(8, 8, drop_rate=0.5, rng=rng)
        schedule = PatternSchedule(rng=rng)
        schedule.attach_module("pooled", layer)
        schedule.register_row_site("descriptor", num_units=16, target_rate=0.5)
        assert len(schedule) == 2
        assert set(schedule.sites()) == {"pooled", "descriptor"}


class TestLayerPoolHooks:
    def test_linear_draw_pool_widths(self, rng):
        layer = ApproxRandomDropoutLinear(8, 24, drop_rate=0.5, rng=rng)
        patterns = layer.draw_pool(20)
        assert len(patterns) == 20
        assert all(p.num_units == 24 for p in patterns)

    def test_dropconnect_draw_pool_geometry(self, rng):
        layer = ApproxDropConnectLinear(64, 64, drop_rate=0.5, tile=32, rng=rng)
        patterns = layer.draw_pool(20)
        assert all((p.rows, p.cols, p.tile) == (64, 64, 32) for p in patterns)

    def test_activation_dropout_draw_pool(self, rng):
        layer = ApproxRandomDropout(48, 0.5, rng=rng)
        patterns = layer.draw_pool(10)
        assert all(p.num_units == 48 for p in patterns)

    def test_block_dropout_draw_pool_and_set_pattern(self, rng):
        layer = ApproxBlockDropout(32, 0.5, block=8, rng=rng)  # 4 blocks
        patterns = layer.draw_pool(10)
        assert all(p.num_units == layer.num_blocks for p in patterns)
        layer.set_pattern(patterns[0])
        assert layer.pattern is patterns[0]
        with pytest.raises(ValueError):
            layer.set_pattern(RowDropoutPattern(layer.num_blocks + 1, 2, 0))

    def test_pooled_forward_matches_mask_semantics(self, rng):
        layer = ApproxRandomDropoutLinear(8, 16, drop_rate=0.5, rng=rng)
        pattern = layer.draw_pool(1)[0]
        layer.set_pattern(pattern)
        x = Tensor(rng.normal(size=(4, 8)))
        out = layer(x)
        expected = (x.data @ layer.weight.data.T + layer.bias.data) * pattern.mask()
        np.testing.assert_allclose(out.data, expected, rtol=1e-9, atol=1e-10)


class TestTrainerIntegration:
    def test_classifier_trainer_uses_pooled_schedule(self, tiny_mnist):
        from repro.training import ClassifierTrainer, ClassifierTrainingConfig

        model = MLPClassifier(MLPConfig(hidden_sizes=(32, 32), drop_rates=(0.5, 0.5),
                                        strategy="row", seed=0))
        config = ClassifierTrainingConfig(batch_size=50, epochs=1,
                                          max_iterations=4, seed=0)
        trainer = ClassifierTrainer(model, tiny_mnist, config)
        assert len(trainer.pattern_schedule.pooled_sites()) == 2
        result = trainer.train()
        assert result.iterations == 4
        stats = trainer.pattern_schedule.pool_stats()
        assert all(site["consumed"] == 4 for site in stats.values())
        assert all(site["refills"] == 1 for site in stats.values())

    def test_lm_trainer_uses_pooled_schedule(self, tiny_corpus):
        from repro.training import LanguageModelTrainer, LanguageModelTrainingConfig

        model = LSTMLanguageModel(LSTMConfig(vocab_size=60, embed_size=16,
                                             hidden_size=16, num_layers=2,
                                             drop_rates=(0.5, 0.5),
                                             strategy="row", seed=0))
        config = LanguageModelTrainingConfig(batch_size=8, seq_len=10, epochs=1,
                                             max_iterations=3, seed=0)
        trainer = LanguageModelTrainer(model, tiny_corpus, config)
        assert len(trainer.pattern_schedule.pooled_sites()) >= 3
        result = trainer.train()
        assert result.iterations == 3
        assert np.isfinite(result.final_metric)

    def test_trainer_with_conventional_dropout_still_works(self, tiny_mnist):
        from repro.training import ClassifierTrainer, ClassifierTrainingConfig

        model = MLPClassifier(MLPConfig(hidden_sizes=(32,), drop_rates=(0.5,),
                                        strategy="original", seed=0))
        config = ClassifierTrainingConfig(batch_size=50, epochs=1,
                                          max_iterations=2, seed=0)
        trainer = ClassifierTrainer(model, tiny_mnist, config)
        assert trainer.pattern_schedule.pooled_sites() == []
        assert trainer.train().iterations == 2

    def test_lm_trainer_lr_decay_not_clobbered_by_pattern_schedule(self, tiny_corpus):
        """Regression: the pattern schedule must not shadow the LR schedule."""
        from repro.training import LanguageModelTrainer, LanguageModelTrainingConfig

        model = LSTMLanguageModel(LSTMConfig(vocab_size=60, embed_size=16,
                                             hidden_size=16, num_layers=2,
                                             drop_rates=(0.5, 0.5),
                                             strategy="row", seed=0))
        # No max_iterations: the LR schedule only steps at completed epochs.
        config = LanguageModelTrainingConfig(batch_size=8, seq_len=30, epochs=3,
                                             learning_rate=1.0, lr_decay=0.5,
                                             lr_flat_epochs=0, seed=0)
        trainer = LanguageModelTrainer(model, tiny_corpus, config)
        trainer.train()
        assert trainer.optimizer.lr == pytest.approx(1.0 * 0.5 ** 3)


class TestMultiForwardSafety:
    """A layer applied 3+ times inside one graph must not corrupt gradients
    through the workspace ring (it falls back to fresh allocations)."""

    @pytest.mark.parametrize("layer_cls, kwargs", [
        (ApproxRandomDropoutLinear, {}),
        (ApproxDropConnectLinear, {"tile": 4}),
    ])
    def test_shared_layer_three_forwards_matches_dense_reference(
            self, rng, layer_cls, kwargs):
        layer = layer_cls(8, 8, drop_rate=0.5, rng=rng, **kwargs)
        layer.resample()
        inputs = [Tensor(rng.normal(size=(3, 8)), requires_grad=True)
                  for _ in range(3)]

        out = layer(inputs[0])
        for x in inputs[1:]:
            out = out + layer(x)
        out.sum().backward()
        shared_grad = layer.weight.grad.copy()

        # Reference: the same three applications against the dense masked math.
        expected = np.zeros_like(layer.weight.data)
        for x in inputs:
            grad_out = np.ones((3, 8))
            if isinstance(layer, ApproxRandomDropoutLinear):
                expected[layer.pattern.kept_indices] += (
                    grad_out[:, layer.pattern.kept_indices].T @ x.data)
            else:
                expected += (grad_out.T @ x.data) * layer.pattern.mask()
        np.testing.assert_allclose(shared_grad, expected, rtol=1e-9, atol=1e-10)
        # The 3rd forward exceeded the 2-slot ring, so the guard kicked in.
        assert layer._forwards_since_pattern == 3
