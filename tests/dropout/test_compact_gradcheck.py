"""Property-based gradcheck suite for the compact ops (RDP and TDP).

Every test pits a compact op against the dense mask-multiply reference built
from the ordinary autodiff ops (dense GEMM + ``apply_mask``), comparing the
forward values AND the analytic gradients of every differentiable input
(``x``, ``weight``, ``bias``) across randomized shapes, dropout patterns,
scale factors and the ``input_pattern`` column-compaction path.  A handful of
central-finite-difference checks anchor the analytic-vs-analytic comparisons
to ground truth.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dropout import (
    CompactWorkspace,
    RowDropoutPattern,
    TileDropoutPattern,
    compile_tile_plan,
)
from repro.dropout.compact_ops import (
    head_compact_linear,
    row_compact_linear,
    tile_compact_linear,
)
from repro.tensor import Tensor, check_gradients, functional as F


def make_inputs(rng, batch, in_features, out_features):
    x = Tensor(rng.normal(size=(batch, in_features)), requires_grad=True)
    weight = Tensor(rng.normal(size=(out_features, in_features)), requires_grad=True)
    bias = Tensor(rng.normal(size=out_features), requires_grad=True)
    return x, weight, bias


def dense_row_reference(x, weight, bias, pattern, input_pattern, scale_factor):
    """Dense autodiff reference for ``row_compact_linear`` (same semantics)."""
    if input_pattern is not None:
        x = F.apply_mask(x, input_pattern.mask()[None, :])
    out = F.apply_mask(F.linear(x, weight, bias), pattern.mask()[None, :])
    return out * scale_factor


def dense_tile_reference(x, weight, bias, pattern, scale_factor):
    """Dense autodiff reference for ``tile_compact_linear`` (same semantics)."""
    out = x.matmul(F.apply_mask(weight, pattern.mask()).transpose()) * scale_factor
    if bias is not None:
        out = out + bias
    return out


def backprop_with_direction(out, direction):
    """Backprop a fixed non-uniform upstream gradient through ``out``."""
    (out * direction).sum().backward()


def grads_of(tensors):
    return [t.grad.copy() if t.grad is not None else None for t in tensors]


def assert_all_close(actual, expected):
    for a, e in zip(actual, expected):
        assert (a is None) == (e is None)
        if a is not None:
            np.testing.assert_allclose(a, e, rtol=1e-9, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(batch=st.integers(1, 6), in_features=st.integers(3, 24),
       out_features=st.integers(3, 24), dp=st.integers(1, 6),
       in_dp=st.integers(0, 5),  # 0 => no input pattern
       scale=st.sampled_from([0.5, 1.0, 2.0]), use_ws=st.booleans(),
       seed=st.integers(0, 10_000))
def test_row_compact_matches_dense_forward_and_gradients(
        batch, in_features, out_features, dp, in_dp, scale, use_ws, seed):
    rng = np.random.default_rng(seed)
    x, weight, bias = make_inputs(rng, batch, in_features, out_features)
    dp = min(dp, out_features)
    pattern = RowDropoutPattern(out_features, dp=dp, bias=int(rng.integers(dp)))
    input_pattern = None
    if in_dp:
        in_dp = min(in_dp, in_features)
        input_pattern = RowDropoutPattern(in_features, dp=in_dp,
                                          bias=int(rng.integers(in_dp)))
    workspace = CompactWorkspace() if use_ws else None
    direction = rng.normal(size=(batch, out_features))

    compact = row_compact_linear(x, weight, bias, pattern,
                                 input_pattern=input_pattern,
                                 scale_factor=scale, workspace=workspace)
    backprop_with_direction(compact, direction)
    compact_grads = grads_of([x, weight, bias])

    for tensor in (x, weight, bias):
        tensor.zero_grad()
    dense = dense_row_reference(x, weight, bias, pattern, input_pattern, scale)
    np.testing.assert_allclose(compact.data, dense.data, rtol=1e-9, atol=1e-10)
    backprop_with_direction(dense, direction)
    assert_all_close(compact_grads, grads_of([x, weight, bias]))


@settings(max_examples=40, deadline=None)
@given(batch=st.integers(1, 6), in_features=st.integers(3, 24),
       out_features=st.integers(3, 24), dp=st.integers(1, 8),
       tile=st.integers(2, 6), scale=st.sampled_from([0.5, 1.0, 1.7]),
       use_ws=st.booleans(), with_bias=st.booleans(), seed=st.integers(0, 10_000))
def test_tile_compact_matches_dense_forward_and_gradients(
        batch, in_features, out_features, dp, tile, scale, use_ws, with_bias, seed):
    rng = np.random.default_rng(seed)
    x, weight, bias = make_inputs(rng, batch, in_features, out_features)
    if not with_bias:
        bias = None
    reference = TileDropoutPattern(rows=out_features, cols=in_features, dp=1,
                                   bias=0, tile=tile)
    dp = min(dp, reference.num_tiles)
    pattern = TileDropoutPattern(rows=out_features, cols=in_features, dp=dp,
                                 bias=int(rng.integers(dp)), tile=tile)
    workspace = CompactWorkspace() if use_ws else None
    direction = rng.normal(size=(batch, out_features))

    tensors = [x, weight] + ([bias] if bias is not None else [])
    compact = tile_compact_linear(x, weight, bias, pattern, scale_factor=scale,
                                  workspace=workspace)
    backprop_with_direction(compact, direction)
    compact_grads = grads_of(tensors)

    for tensor in tensors:
        tensor.zero_grad()
    dense = dense_tile_reference(x, weight, bias, pattern, scale)
    np.testing.assert_allclose(compact.data, dense.data, rtol=1e-9, atol=1e-10)
    backprop_with_direction(dense, direction)
    assert_all_close(compact_grads, grads_of(tensors))


def dense_head_reference(x, weight, bias, kept_rows, input_pattern):
    """Dense autodiff reference for ``head_compact_linear``: full projection,
    then a differentiable gather of the kept output columns."""
    if input_pattern is not None:
        x = F.apply_mask(x, input_pattern.mask()[None, :])
    return F.cols_select(F.linear(x, weight, bias), kept_rows)


@settings(max_examples=40, deadline=None)
@given(batch=st.integers(1, 6), in_features=st.integers(3, 24),
       out_features=st.integers(4, 32), dp=st.integers(1, 6),
       in_dp=st.integers(0, 5),  # 0 => no input pattern
       extra_targets=st.integers(0, 4), use_ws=st.booleans(),
       seed=st.integers(0, 10_000))
def test_head_compact_matches_dense_forward_and_gradients(
        batch, in_features, out_features, dp, in_dp, extra_targets, use_ws,
        seed):
    """The class-pruned gather-GEMM of the loss heads: compact logits match a
    dense-projection-then-gather reference, and the weight/bias gradients of
    dropped classes are exactly zero."""
    rng = np.random.default_rng(seed)
    x, weight, bias = make_inputs(rng, batch, in_features, out_features)
    dp = min(dp, out_features)
    pattern = RowDropoutPattern(out_features, dp=dp, bias=int(rng.integers(dp)))
    # The heads keep the pattern rows plus the batch targets — model that as
    # a few extra rows unioned in.
    kept_rows = np.union1d(pattern.kept_indices,
                           rng.integers(0, out_features, size=extra_targets))
    input_pattern = None
    if in_dp:
        in_dp = min(in_dp, in_features)
        input_pattern = RowDropoutPattern(in_features, dp=in_dp,
                                          bias=int(rng.integers(in_dp)))
    workspace = CompactWorkspace() if use_ws else None
    direction = rng.normal(size=(batch, len(kept_rows)))

    compact = head_compact_linear(x, weight, bias, kept_rows,
                                  input_pattern=input_pattern,
                                  workspace=workspace)
    backprop_with_direction(compact, direction)
    compact_grads = grads_of([x, weight, bias])
    dropped = np.setdiff1d(np.arange(out_features), kept_rows)
    assert np.all(compact_grads[1][dropped] == 0.0)
    assert np.all(compact_grads[2][dropped] == 0.0)

    for tensor in (x, weight, bias):
        tensor.zero_grad()
    dense = dense_head_reference(x, weight, bias, kept_rows, input_pattern)
    np.testing.assert_allclose(compact.data, dense.data, rtol=1e-9, atol=1e-10)
    backprop_with_direction(dense, direction)
    assert_all_close(compact_grads, grads_of([x, weight, bias]))


class TestNumericalGradcheck:
    """Central-difference anchors for the analytic-vs-analytic property tests."""

    @pytest.mark.parametrize("in_dp", [None, 2, 3])
    def test_row_compact_numerical(self, rng, in_dp):
        x, weight, bias = make_inputs(rng, 3, 7, 9)
        pattern = RowDropoutPattern(9, dp=3, bias=1)
        input_pattern = RowDropoutPattern(7, dp=in_dp, bias=in_dp - 1) if in_dp else None
        workspace = CompactWorkspace()
        check_gradients(
            lambda: (row_compact_linear(x, weight, bias, pattern,
                                        input_pattern=input_pattern,
                                        scale_factor=1.5,
                                        workspace=workspace) ** 2).sum(),
            [x, weight, bias])

    def test_tile_compact_numerical_with_workspace(self, rng):
        x, weight, bias = make_inputs(rng, 3, 7, 9)
        pattern = TileDropoutPattern(rows=9, cols=7, dp=3, bias=1, tile=3)
        workspace = CompactWorkspace()
        check_gradients(
            lambda: (tile_compact_linear(x, weight, bias, pattern,
                                         scale_factor=1.3,
                                         workspace=workspace) ** 2).sum(),
            [x, weight, bias])

    def test_tile_compact_numerical_with_partial_edge_tiles(self, rng):
        # 10x11 with tile=4 leaves partial tiles on both edges.
        x, weight, bias = make_inputs(rng, 2, 11, 10)
        pattern = TileDropoutPattern(rows=10, cols=11, dp=2, bias=1, tile=4)
        check_gradients(
            lambda: (tile_compact_linear(x, weight, bias, pattern) ** 2).sum(),
            [x, weight, bias])

    def test_head_compact_rejects_duplicate_classes(self, rng):
        # The gradient scatter assigns per kept row; duplicates would get
        # last-write-wins gradients, so the op refuses them up front.
        x, weight, bias = make_inputs(rng, 3, 8, 12)
        with pytest.raises(ValueError, match="duplicate"):
            head_compact_linear(x, weight, bias, np.array([3, 3, 7]))

    @pytest.mark.parametrize("in_dp", [None, 2])
    def test_head_compact_numerical(self, rng, in_dp):
        x, weight, bias = make_inputs(rng, 3, 8, 12)
        kept_rows = np.array([0, 3, 4, 7, 11])
        input_pattern = RowDropoutPattern(8, dp=in_dp, bias=1) if in_dp else None
        workspace = CompactWorkspace()
        check_gradients(
            lambda: (head_compact_linear(x, weight, bias, kept_rows,
                                         input_pattern=input_pattern,
                                         workspace=workspace) ** 2).sum(),
            [x, weight, bias])


class TestWorkspaceSafety:
    """The buffer ring must not corrupt tensors still referenced by the tape."""

    def test_two_consecutive_steps_share_no_buffer_corruption(self, rng):
        x, weight, bias = make_inputs(rng, 4, 6, 8)
        pattern = RowDropoutPattern(8, dp=2, bias=0)
        workspace = CompactWorkspace()
        out1 = row_compact_linear(x, weight, bias, pattern, workspace=workspace)
        snapshot = out1.data.copy()
        out1.sum().backward()
        grad1 = weight.grad.copy()
        for tensor in (x, weight, bias):
            tensor.zero_grad()
        out2 = row_compact_linear(x, weight, bias, pattern, workspace=workspace)
        # The previous step's output tensor is still intact (ring slot 2 used).
        np.testing.assert_array_equal(out1.data, snapshot)
        out2.sum().backward()
        np.testing.assert_allclose(weight.grad, grad1)
        # The ring holds `slots` buffers per key, so reuse starts at step 3.
        assert workspace.hits == 0
        for tensor in (x, weight, bias):
            tensor.zero_grad()
        out3 = row_compact_linear(x, weight, bias, pattern, workspace=workspace)
        out3.sum().backward()
        np.testing.assert_allclose(weight.grad, grad1)
        np.testing.assert_array_equal(out3.data, snapshot)
        assert workspace.hits > 0

    def test_shape_change_reallocates(self, rng):
        workspace = CompactWorkspace()
        a = workspace.zeros("k", (4, 8))
        a[:] = 7.0
        b = workspace.zeros("k", (2, 8))
        assert b.shape == (2, 8)
        assert np.all(b == 0.0)

    def test_buffers_return_zeroed(self):
        workspace = CompactWorkspace(slots=1)
        first = workspace.zeros("k", (3, 3))
        first += 5.0
        again = workspace.zeros("k", (3, 3))
        assert again is first
        assert np.all(again == 0.0)


class TestTilePlan:
    def test_plan_is_interned(self):
        pattern = TileDropoutPattern(rows=64, cols=64, dp=2, bias=0, tile=32)
        assert compile_tile_plan(pattern) is compile_tile_plan(pattern)

    def test_plan_groups_cover_exactly_the_kept_tiles(self):
        pattern = TileDropoutPattern(rows=12, cols=12, dp=3, bias=1, tile=4)
        plan = compile_tile_plan(pattern)
        rebuilt = np.zeros((12, 12))
        for group in plan.row_groups:
            rebuilt[group.row_start:group.row_stop][:, group.col_indices] = 1.0
        np.testing.assert_array_equal(rebuilt, pattern.mask())

    def test_compact_flops_fraction_matches_keep_fraction(self):
        pattern = TileDropoutPattern(rows=16, cols=16, dp=4, bias=2, tile=4)
        plan = compile_tile_plan(pattern)
        assert plan.compact_flops_fraction == pytest.approx(pattern.keep_fraction)

    def test_mismatched_plan_rejected(self, rng):
        x, weight, bias = make_inputs(rng, 2, 8, 8)
        pattern = TileDropoutPattern(rows=8, cols=8, dp=2, bias=0, tile=4)
        other = compile_tile_plan(TileDropoutPattern(rows=8, cols=8, dp=2, bias=1,
                                                     tile=4))
        with pytest.raises(ValueError):
            tile_compact_linear(x, weight, bias, pattern, plan=other)
