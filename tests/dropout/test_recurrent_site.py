"""Tests for the recurrent (gate-aligned DropConnect) pattern site.

Covers the whole new recurrent path bottom-up: the
:class:`RecurrentTilePattern` objects and their interning, the sampler draws,
the replicated execution plans and column-class decomposition, the
``recurrent_compact_linear`` / window-context ops (property-tested against
the dense masked reference, forward and both gradients), and the
:class:`ApproxRecurrentDropConnect` module's gating/mode semantics.
"""

import numpy as np
import pytest

from repro.dropout.compact_ops import (
    recurrent_compact_context,
    recurrent_compact_linear,
    recurrent_context_linear,
)
from repro.dropout.engine import (
    compile_recurrent_plan,
    compile_tile_plan,
    plan_column_classes,
)
from repro.dropout.layers import ApproxRecurrentDropConnect
from repro.dropout.patterns import (
    RecurrentTilePattern,
    TileDropoutPattern,
    recurrent_tile_mask,
    recurrent_tile_pattern,
)
from repro.dropout.sampler import PatternSampler, is_pattern_site
from repro.tensor import Tensor


class TestRecurrentTilePattern:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecurrentTilePattern(hidden_size=0, num_gates=4, dp=2, bias=0)
        with pytest.raises(ValueError):
            RecurrentTilePattern(hidden_size=32, num_gates=0, dp=2, bias=0)
        with pytest.raises(ValueError):
            RecurrentTilePattern(hidden_size=32, num_gates=4, dp=2, bias=2)

    def test_mask_is_gate_replicated(self):
        pattern = RecurrentTilePattern(hidden_size=64, num_gates=4, dp=3,
                                       bias=1, tile=32)
        mask = pattern.mask()
        assert mask.shape == (256, 64)
        gate_mask = pattern.gate_pattern.mask()
        for gate in range(4):
            np.testing.assert_array_equal(mask[gate * 64:(gate + 1) * 64],
                                          gate_mask)

    def test_rebuilt_mask_matches_cached(self):
        pattern = RecurrentTilePattern(hidden_size=96, num_gates=4, dp=5,
                                       bias=2, tile=32)
        np.testing.assert_array_equal(
            recurrent_tile_mask(96, 4, 5, 2, 32), pattern.mask())

    def test_keep_fraction_matches_gate_pattern(self):
        pattern = RecurrentTilePattern(hidden_size=64, num_gates=4, dp=4,
                                       bias=0, tile=32)
        assert pattern.keep_fraction == pattern.gate_pattern.keep_fraction
        assert pattern.drop_rate == pytest.approx(1 - pattern.keep_fraction)

    def test_interning(self):
        first = recurrent_tile_pattern(64, 4, 3, 1, 32)
        second = recurrent_tile_pattern(64, 4, 3, 1, 32)
        assert first is second
        assert recurrent_tile_pattern(64, 4, 3, 2, 32) is not first

    def test_describe_mentions_gates(self):
        text = RecurrentTilePattern(hidden_size=64, num_gates=4, dp=2,
                                    bias=0).describe()
        assert "gates=4" in text


class TestSamplerRecurrentDraws:
    def test_scalar_draw_caps_period_to_gate_tiles(self):
        # A 32-wide hidden layer has a single 32x32 tile per gate: every draw
        # must collapse to dp=1 regardless of the searched distribution.
        sampler = PatternSampler(0.5, 8, rng=np.random.default_rng(0))
        pattern = sampler.sample_recurrent_pattern(32, num_gates=4, tile=32)
        assert pattern.dp == 1
        assert pattern.num_gates == 4

    def test_batched_draws_are_interned_and_deterministic(self):
        def draw(seed):
            sampler = PatternSampler(0.5, 8, rng=np.random.default_rng(seed))
            return sampler.sample_recurrent_patterns(128, 4, 32, tile=32)

        first, second = draw(3), draw(3)
        assert [p.dp for p in first] == [p.dp for p in second]
        assert all(a is b for a, b in zip(first, second))  # interned
        assert any(p.dp > 1 for p in first)


class TestRecurrentPlan:
    def test_plan_replicates_gate_groups_with_offsets(self):
        pattern = RecurrentTilePattern(hidden_size=96, num_gates=4, dp=3,
                                       bias=1, tile=32)
        plan = compile_recurrent_plan(pattern)
        gate_plan = compile_tile_plan(pattern.gate_pattern)
        assert plan.kind == "recurrent"
        assert plan.rows == 384 and plan.cols == 96
        assert len(plan.row_groups) == 4 * len(gate_plan.row_groups)
        per_gate = len(gate_plan.row_groups)
        for gate in range(4):
            for offset_group, base_group in zip(
                    plan.row_groups[gate * per_gate:(gate + 1) * per_gate],
                    gate_plan.row_groups):
                assert offset_group.row_start == base_group.row_start + gate * 96
                np.testing.assert_array_equal(offset_group.col_indices,
                                              base_group.col_indices)

    def test_flops_fraction_matches_gate_plan(self):
        pattern = RecurrentTilePattern(hidden_size=128, num_gates=4, dp=4,
                                       bias=2, tile=32)
        plan = compile_recurrent_plan(pattern)
        gate_plan = compile_tile_plan(pattern.gate_pattern)
        assert plan.compact_flops_fraction == pytest.approx(
            gate_plan.compact_flops_fraction)

    def test_plan_interned(self):
        pattern = RecurrentTilePattern(hidden_size=64, num_gates=4, dp=2, bias=0)
        assert compile_recurrent_plan(pattern) is compile_recurrent_plan(pattern)

    def test_identity_distinguishes_recurrent_from_tile(self):
        """A generic TDP plan over the same (4H, H) shape must never share a
        cache identity with the gate-aligned plan (their structures differ)."""
        recurrent = compile_recurrent_plan(
            RecurrentTilePattern(hidden_size=64, num_gates=4, dp=3, bias=1))
        tile = compile_tile_plan(
            TileDropoutPattern(rows=256, cols=64, dp=3, bias=1, tile=32))
        assert recurrent.identity != tile.identity

    def test_column_classes_cover_plan_with_disjoint_rows(self):
        pattern = RecurrentTilePattern(hidden_size=160, num_gates=4, dp=5,
                                       bias=3, tile=32)
        plan = compile_recurrent_plan(pattern)
        classes = plan_column_classes(plan)
        all_rows = np.concatenate([rows for rows, _ in classes])
        assert len(all_rows) == len(np.unique(all_rows))  # disjoint row sets
        group_rows = np.concatenate([np.arange(g.row_start, g.row_stop)
                                     for g in plan.row_groups])
        np.testing.assert_array_equal(np.sort(all_rows), np.sort(group_rows))
        # Gate alignment: every class's rows repeat across all four gates.
        for rows, _ in classes:
            assert len(rows) % 4 == 0


def _dense_masked_reference(h, weight, pattern, scale=1.0):
    masked = weight * pattern.mask()
    return h @ masked.T * scale


CASES = [
    # (hidden, num_gates, dp, bias, tile)
    (96, 4, 3, 1, 32),
    (160, 4, 5, 3, 32),
    (64, 4, 1, 0, 32),
    (70, 4, 4, 2, 16),
    (96, 2, 2, 1, 32),
    (256, 4, 7, 2, 32),
]


class TestRecurrentCompactLinear:
    @pytest.mark.parametrize("hidden,gates,dp,bias,tile", CASES)
    def test_matches_dense_masked_reference(self, hidden, gates, dp, bias, tile):
        pattern = RecurrentTilePattern(hidden_size=hidden, num_gates=gates,
                                       dp=dp, bias=bias, tile=tile)
        rng = np.random.default_rng(7)
        w = rng.normal(size=(gates * hidden, hidden)) * 0.1
        h = rng.normal(size=(5, hidden))
        ht = Tensor(h, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        out = recurrent_compact_linear(ht, wt, pattern, scale_factor=1.3)
        np.testing.assert_allclose(
            out.data, _dense_masked_reference(h, w, pattern, 1.3),
            rtol=1e-10, atol=1e-12)
        seed = np.random.default_rng(1).normal(size=out.shape)
        (out * Tensor(seed)).sum().backward()
        np.testing.assert_allclose(ht.grad, seed @ (w * pattern.mask()) * 1.3,
                                   rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(wt.grad, (seed.T @ h) * pattern.mask() * 1.3,
                                   rtol=1e-10, atol=1e-12)
        # Dropped tiles receive exactly zero gradient.
        assert np.all(wt.grad[pattern.mask() == 0.0] == 0.0)

    def test_shape_validation(self):
        pattern = RecurrentTilePattern(hidden_size=64, num_gates=4, dp=2, bias=0)
        with pytest.raises(ValueError, match="does not match"):
            recurrent_compact_linear(Tensor(np.zeros((3, 64))),
                                     Tensor(np.zeros((128, 64))), pattern)
        with pytest.raises(ValueError, match="feature dimension"):
            recurrent_compact_linear(Tensor(np.zeros((3, 32))),
                                     Tensor(np.zeros((256, 64))), pattern)

    def test_mismatched_plan_rejected(self):
        pattern = RecurrentTilePattern(hidden_size=64, num_gates=4, dp=2, bias=0)
        other = compile_recurrent_plan(
            RecurrentTilePattern(hidden_size=64, num_gates=4, dp=2, bias=1))
        with pytest.raises(ValueError, match="different pattern"):
            recurrent_compact_linear(Tensor(np.zeros((3, 64))),
                                     Tensor(np.zeros((256, 64))), pattern,
                                     plan=other)


class TestWindowContext:
    @pytest.mark.parametrize("hidden,gates,dp,bias,tile", CASES)
    def test_unrolled_context_matches_per_step_op(self, hidden, gates, dp,
                                                  bias, tile):
        """Three 'timesteps' against one hoisted context must reproduce the
        per-step plan op exactly — outputs and the tape-accumulated grads."""
        pattern = RecurrentTilePattern(hidden_size=hidden, num_gates=gates,
                                       dp=dp, bias=bias, tile=tile)
        rng = np.random.default_rng(3)
        w = rng.normal(size=(gates * hidden, hidden)) * 0.1
        steps = [rng.normal(size=(4, hidden)) for _ in range(3)]

        wt = Tensor(w, requires_grad=True)
        reference = [recurrent_compact_linear(Tensor(h, requires_grad=True),
                                              wt, pattern, scale_factor=1.1)
                     for h in steps]
        total = reference[0].sum()
        for out in reference[1:]:
            total = total + out.sum()
        total.backward()
        expected_grad = wt.grad.copy()

        wt2 = Tensor(w, requires_grad=True)
        context = recurrent_compact_context(wt2, pattern)
        hts = [Tensor(h, requires_grad=True) for h in steps]
        outs = [recurrent_context_linear(ht, context, scale_factor=1.1)
                for ht in hts]
        total2 = outs[0].sum()
        for out in outs[1:]:
            total2 = total2 + out.sum()
        total2.backward()

        for ref, got in zip(reference, outs):
            np.testing.assert_allclose(got.data, ref.data, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(wt2.grad, expected_grad,
                                   rtol=1e-12, atol=1e-12)
        assert np.all(wt2.grad[pattern.mask() == 0.0] == 0.0)

    def test_context_input_gradients_match(self):
        pattern = RecurrentTilePattern(hidden_size=96, num_gates=4, dp=3, bias=1)
        rng = np.random.default_rng(5)
        w = rng.normal(size=(384, 96)) * 0.1
        h = rng.normal(size=(6, 96))
        seed = rng.normal(size=(6, 384))

        ht = Tensor(h, requires_grad=True)
        context = recurrent_compact_context(Tensor(w, requires_grad=True), pattern)
        out = recurrent_context_linear(ht, context)
        (out * Tensor(seed)).sum().backward()
        np.testing.assert_allclose(ht.grad, seed @ (w * pattern.mask()),
                                   rtol=1e-10, atol=1e-12)


class TestApproxRecurrentDropConnect:
    def make_site(self, hidden=96, rate=0.5, enabled=True, seed=0):
        return ApproxRecurrentDropConnect(hidden, rate, enabled=enabled,
                                          rng=np.random.default_rng(seed))

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxRecurrentDropConnect(0, 0.5)
        with pytest.raises(ValueError):
            ApproxRecurrentDropConnect(32, 1.0)
        with pytest.raises(ValueError):
            ApproxRecurrentDropConnect(32, 0.5, num_gates=0)

    def test_disabled_site_is_dense_and_not_a_pattern_site(self, rng):
        site = self.make_site(enabled=False)
        assert site.drop_rate == 0.0
        assert not is_pattern_site(site)
        h = Tensor(rng.normal(size=(3, 96)))
        w = Tensor(rng.normal(size=(384, 96)))
        np.testing.assert_array_equal(site.project(h, w).data,
                                      (h.data @ w.data.T))
        assert site.resample() is None

    def test_enabled_site_is_a_pattern_site_with_pool_protocol(self):
        site = self.make_site(enabled=True)
        assert site.drop_rate == 0.5
        assert is_pattern_site(site)
        pool = site.draw_pool(8)
        assert len(pool) == 8
        site.set_pattern(pool[0])
        assert site.pattern is pool[0]
        with pytest.raises(ValueError):
            site.set_pattern(recurrent_tile_pattern(32, 4, 1, 0, 32))

    def test_masked_and_compact_modes_match(self, rng):
        h = Tensor(rng.normal(size=(4, 96)))
        w = Tensor(rng.normal(size=(384, 96)) * 0.1)
        site = self.make_site(enabled=True)
        site.resample()
        pattern = site.pattern
        site.execution_mode = "compact"
        compact = site.project(h, w)
        site.execution_mode = "masked"
        site.set_pattern(pattern)
        masked = site.project(h, w)
        np.testing.assert_allclose(compact.data, masked.data,
                                   rtol=1e-10, atol=1e-12)

    def test_window_context_path_matches_direct(self, rng):
        h = Tensor(rng.normal(size=(4, 96)))
        w = Tensor(rng.normal(size=(384, 96)) * 0.1)
        site = self.make_site(enabled=True)
        site.resample()
        direct = site.project(h, w)
        context = site.window_context(w)
        assert context is not None
        hoisted = site.project(h, w, context=context)
        np.testing.assert_allclose(hoisted.data, direct.data,
                                   rtol=1e-12, atol=1e-12)

    def test_stale_context_falls_back_to_plan_op(self, rng):
        h = Tensor(rng.normal(size=(4, 96)))
        w = Tensor(rng.normal(size=(384, 96)) * 0.1)
        site = self.make_site(enabled=True)
        site.resample()
        context = site.window_context(w)
        # The schedule installs a different pattern: the old context must not
        # be used (it would compute the wrong sparsity).
        stale = context.pattern
        new = recurrent_tile_pattern(96, 4, max(2, stale.dp % 3 + 1),
                                     0, site.tile)
        site.set_pattern(new)
        out = site.project(h, w, context=context)
        np.testing.assert_allclose(out.data,
                                   _dense_masked_reference(h.data, w.data, new),
                                   rtol=1e-10, atol=1e-12)

    def test_eval_rescales_by_keep_probability(self, rng):
        site = self.make_site(enabled=True)
        site.eval()
        h = Tensor(rng.normal(size=(3, 96)))
        w = Tensor(rng.normal(size=(384, 96)))
        np.testing.assert_allclose(site.project(h, w).data,
                                   h.data @ (w.data * 0.5).T,
                                   rtol=1e-12, atol=1e-12)
        assert site.window_context(w) is None  # no compact path in eval

    def test_masked_mode_has_no_window_context(self):
        site = self.make_site(enabled=True)
        site.execution_mode = "masked"
        assert site.window_context(Tensor(np.zeros((384, 96)))) is None

    def test_tile_shrinks_for_small_hidden_layers(self):
        site = ApproxRecurrentDropConnect(16, 0.5, tile=32,
                                          rng=np.random.default_rng(0))
        assert site.tile < 32  # a single 32x32 tile cannot express rate 0.5
