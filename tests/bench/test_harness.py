"""Fast smoke tests for the ``repro.bench`` wall-clock harness.

These run the harness at toy sizes, checking plumbing (config validation, JSON
report shape, CLI entry point) without asserting speedups — tiny operands are
timer-noise dominated.  The speedup acceptance check lives in
``benchmarks/test_bench_compact_engine.py`` (slow tier).
"""

import json

import pytest

from repro.bench import BenchmarkConfig, run_benchmark, write_report
from repro.bench.__main__ import main as bench_main, parse_args


def tiny_config(**overrides) -> BenchmarkConfig:
    defaults = dict(widths=(48,), rates=(0.5,), batch=8, steps=2, repeats=1,
                    warmup=0, max_period=4, families=("row", "tile"),
                    serve_requests=40, serve_concurrency=2, head_vocab=())
    defaults.update(overrides)
    return BenchmarkConfig(**defaults)


def serve_entry(family="serve_mlp", width=2048, *, cpu_gated=False,
                p99_pooled=25.0, rps_pooled=700.0, **overrides):
    """A gate-passing serve report entry (pooled dominates the baseline)."""
    record = {"family": family, "width": width, "rate": 0.7,
              "speedup_pooled": 2.5, "backend": "numpy",
              "cpu_count": 1 if cpu_gated else 8, "cpu_gated": cpu_gated,
              "serving": {"masked": {"p99_ms": 80.0, "throughput_rps": 250.0},
                          "pooled": {"p99_ms": p99_pooled,
                                     "throughput_rps": rps_pooled}}}
    record.update(overrides)
    return record


class TestBenchmarkConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(batch=0)
        with pytest.raises(ValueError):
            BenchmarkConfig(warmup=-1)
        with pytest.raises(ValueError):
            BenchmarkConfig(families=("bogus",))

    def test_defaults_cover_acceptance_case(self):
        config = BenchmarkConfig()
        assert 2048 in config.widths
        assert 0.7 in config.rates


class TestRunBenchmark:
    def test_row_and_tile_cases_produced(self):
        results = run_benchmark(tiny_config())
        assert [r.family for r in results] == ["row", "tile"]
        for result in results:
            assert set(result.mode_ms) == {"masked", "compact", "pooled"}
            assert all(ms > 0 for ms in result.mode_ms.values())
            assert result.speedup_pooled > 0
            assert result.speedup_compact > 0

    def test_single_family_selection(self):
        results = run_benchmark(tiny_config(families=("row",)))
        assert [r.family for r in results] == ["row"]

    def test_rectangular_layer(self):
        results = run_benchmark(tiny_config(in_features=24, families=("row",)))
        (result,) = results
        assert result.in_features == 24
        assert result.width == 48


class TestLstmRecFamily:
    """The recurrent-projection (gate-aligned DropConnect) benchmark family."""

    def test_lstm_rec_case_produced(self):
        results = run_benchmark(tiny_config(families=("lstm_rec",)))
        (result,) = results
        assert result.family == "lstm_rec"
        assert result.recurrent == "tiled"
        assert set(result.mode_ms) == {"masked", "compact", "pooled"}
        assert all(ms > 0 for ms in result.mode_ms.values())
        assert 0.0 < result.keep_fraction <= 1.0
        assert result.to_dict()["recurrent"] == "tiled"

    def test_lstm_rec_in_family_registry_and_cli(self):
        assert "lstm_rec" in BenchmarkConfig.FAMILIES
        args = parse_args(["--families", "lstm_rec"])
        assert args.families == ["lstm_rec"]

    def test_recurrent_toggle_validation(self):
        with pytest.raises(ValueError, match="recurrent"):
            BenchmarkConfig(recurrent="sparse")
        assert BenchmarkConfig().recurrent == "tiled"

    def test_e2e_config_records_recurrent(self, tmp_path):
        config = tiny_config(widths=(32,), batch=8, families=("e2e",),
                             recurrent="tiled",
                             output=str(tmp_path / "bench.json"))
        results = run_benchmark(config)
        path = write_report(results, config)
        with open(path) as handle:
            report = json.load(handle)
        assert report["config"]["recurrent"] == "tiled"
        lstm_entry = next(e for e in report["results"]
                          if e["family"] == "e2e_lstm")
        assert lstm_entry["recurrent"] == "tiled"


class TestHeadFamily:
    """The loss-head (sampled softmax) benchmark family and CLI plumbing."""

    def test_head_case_produced(self):
        results = run_benchmark(tiny_config(families=("head",)))
        (result,) = results
        assert result.family == "head"
        assert result.loss_head == "sampled"
        assert set(result.mode_ms) == {"masked", "compact", "pooled"}
        assert all(ms > 0 for ms in result.mode_ms.values())
        assert 0.0 < result.keep_fraction <= 1.0
        assert result.to_dict()["loss_head"] == "sampled"

    def test_head_in_family_registry_defaults_and_cli(self):
        assert "head" in BenchmarkConfig.FAMILIES
        assert "head" in BenchmarkConfig().families  # default sweep
        args = parse_args([])
        assert "head" in args.families  # --quick inherits the default list
        args = parse_args(["--families", "head"])
        assert args.families == ["head"]

    def test_loss_head_toggle_validation(self):
        with pytest.raises(ValueError, match="loss head"):
            BenchmarkConfig(loss_head="hierarchical")
        assert BenchmarkConfig().loss_head == "sampled"

    def test_cli_unknown_family_fails_fast_with_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_main(["--families", "row", "bogus"])
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
        err = capsys.readouterr().err
        assert "unknown benchmark families: bogus" in err
        for family in BenchmarkConfig.FAMILIES:
            assert family in err

    def test_config_unknown_family_error_names_valid_families(self):
        with pytest.raises(ValueError, match="valid families"):
            BenchmarkConfig(families=("bogus",))

    def test_e2e_config_records_loss_head(self, tmp_path):
        config = tiny_config(widths=(32,), batch=8, families=("e2e",),
                             loss_head="sampled",
                             output=str(tmp_path / "bench.json"))
        results = run_benchmark(config)
        path = write_report(results, config)
        with open(path) as handle:
            report = json.load(handle)
        assert report["config"]["loss_head"] == "sampled"
        lstm_entry = next(e for e in report["results"]
                          if e["family"] == "e2e_lstm")
        assert lstm_entry["loss_head"] == "sampled"

    def test_cli_loss_head_flag(self, tmp_path):
        output = str(tmp_path / "bench.json")
        assert bench_main(["--quick", "--families", "head",
                           "--loss-head", "dense", "--output", output]) == 0
        with open(output) as handle:
            report = json.load(handle)
        assert report["config"]["loss_head"] == "dense"


class TestHeadVocabFamily:
    """The large-vocabulary adaptive-head benchmark family (ISSUE 10)."""

    def test_case_produced_with_vocab_and_loss_head(self):
        config = tiny_config(families=("head_vocab",), head_vocab=(64,),
                             in_features=12)
        (result,) = run_benchmark(config)
        assert result.family == "head_vocab"
        assert result.width == 64
        assert result.vocab == 64
        assert result.loss_head == "adaptive"
        assert set(result.mode_ms) == {"masked", "compact", "pooled"}
        assert all(ms > 0 for ms in result.mode_ms.values())
        assert 0.0 < result.keep_fraction <= 1.5  # pilots can double-count
        data = result.to_dict()
        assert data["vocab"] == 64
        assert data["loss_head"] == "adaptive"

    def test_head_family_sprouts_the_vocab_axis(self):
        from repro.bench.harness import case_descriptors

        config = tiny_config(families=("head",), head_vocab=(64, 128),
                             rates=(0.5, 0.7))
        cases = case_descriptors(config)
        assert ("head_vocab", 64, 0.7) in cases
        assert ("head_vocab", 128, 0.7) in cases
        # Sprouted at the top rate only — one case per vocabulary.
        assert sum(kind == "head_vocab" for kind, _, _ in cases) == 2

    def test_direct_family_selection_does_not_double_add(self):
        from repro.bench.harness import case_descriptors

        config = tiny_config(families=("head", "head_vocab"), head_vocab=(64,))
        cases = case_descriptors(config)
        assert sum(kind == "head_vocab" for kind, _, _ in cases) == 1

    def test_empty_head_vocab_disables_the_axis(self):
        from repro.bench.harness import case_descriptors

        config = tiny_config(families=("head",), head_vocab=())
        assert all(kind != "head_vocab"
                   for kind, _, _ in case_descriptors(config))

    def test_vocab_validation(self):
        with pytest.raises(ValueError, match="head_vocab"):
            BenchmarkConfig(head_vocab=(1,))

    def test_in_family_registry_and_cli(self):
        assert "head_vocab" in BenchmarkConfig.FAMILIES
        args = parse_args([])
        assert args.head_vocab == [8192, 50000]
        args = parse_args(["--head-vocab", "4096"])
        assert args.head_vocab == [4096]

    def test_report_round_trips_vocab_and_config(self, tmp_path):
        config = tiny_config(families=("head_vocab",), head_vocab=(64,),
                             in_features=12,
                             output=str(tmp_path / "bench.json"))
        results = run_benchmark(config)
        path = write_report(results, config)
        with open(path) as handle:
            report = json.load(handle)
        assert report["config"]["head_vocab"] == [64]
        (entry,) = report["results"]
        assert entry["vocab"] == 64

    def test_gate_covers_the_adaptive_case(self):
        from repro.bench.delta import (ACCEPTANCE_CASES, ADAPTIVE_CASES,
                                       quick_acceptance_config)
        from repro.bench.harness import case_descriptors

        assert ("head_vocab", 50000, 0.7) in ADAPTIVE_CASES
        assert ("head_vocab", 50000, 0.7) in ACCEPTANCE_CASES
        config = quick_acceptance_config()
        # The quick gate sweep must actually produce that case (sprouted by
        # the head family at the top rate).
        assert ("head_vocab", 50000, 0.7) in case_descriptors(config)


class TestAdaptiveGate:
    """The absolute large-vocab adaptive-head bar of the delta gate."""

    @staticmethod
    def entry(speedup=1.7, **overrides):
        record = {"family": "head_vocab", "width": 50000, "rate": 0.7,
                  "speedup_pooled": speedup, "backend": "numpy"}
        record.update(overrides)
        return record

    def test_passes_when_bar_met(self):
        from repro.bench.delta import adaptive_failures

        assert adaptive_failures([self.entry(speedup=1.7)]) == []

    def test_fails_below_bar(self):
        from repro.bench.delta import adaptive_failures

        failures = adaptive_failures([self.entry(speedup=1.1)])
        assert len(failures) == 1
        assert "1.3x bar" in failures[0]
        assert "vocab=50000" in failures[0]

    def test_missing_case_fails(self):
        from repro.bench.delta import adaptive_failures

        failures = adaptive_failures([])
        assert len(failures) == 1
        assert "missing from the fresh run" in failures[0]

    def test_min_speedup_validation(self):
        from repro.bench.delta import adaptive_failures

        with pytest.raises(ValueError, match="min_speedup"):
            adaptive_failures([self.entry()], min_speedup=0.0)

    def test_cli_flag_raises_the_bar(self, tmp_path, capsys):
        from repro.bench.delta import main as delta_main

        def base(family, width=2048):
            return {"family": family, "width": width, "rate": 0.7,
                    "speedup_pooled": 4.0, "backend": "numpy"}

        results = [base("row"), base("tile"), base("head"),
                   self.entry(speedup=1.7), base("e2e_lstm", width=256)]
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps({"results": results}))
        fresh_path.write_text(json.dumps({"results": results}))
        common = ["--baseline", str(baseline_path), "--fresh", str(fresh_path)]
        # 1.7x meets the default 1.3x bar but not a 2.0x one.  (The missing
        # dist/elastic/serve cases fail either way, so compare the output.)
        delta_main(common)
        default_out = capsys.readouterr().out
        assert "adaptive loss head beats the dense head" not in default_out
        delta_main(common + ["--min-adaptive-speedup", "2.0"])
        raised_out = capsys.readouterr().out
        assert "only 1.70x" in raised_out and "2.0x bar" in raised_out


class TestOptimizerToggle:
    """The sparse-optimizer toggle of the e2e families and its CLI plumbing."""

    def test_optimizer_validation_and_default(self):
        with pytest.raises(ValueError, match="optimizer"):
            BenchmarkConfig(optimizer="adam")
        assert BenchmarkConfig().optimizer == "sparse"

    def test_e2e_config_records_optimizer(self, tmp_path):
        config = tiny_config(widths=(32,), batch=8, families=("e2e",),
                             optimizer="sparse",
                             output=str(tmp_path / "bench.json"))
        results = run_benchmark(config)
        path = write_report(results, config)
        with open(path) as handle:
            report = json.load(handle)
        assert report["config"]["optimizer"] == "sparse"
        for family in ("e2e_mlp", "e2e_lstm"):
            entry = next(e for e in report["results"] if e["family"] == family)
            assert entry["optimizer"] == "sparse"

    def test_cli_optimizer_flag(self, tmp_path):
        output = str(tmp_path / "bench.json")
        assert bench_main(["--quick", "--families", "e2e",
                           "--optimizer", "dense", "--output", output]) == 0
        with open(output) as handle:
            report = json.load(handle)
        assert report["config"]["optimizer"] == "dense"

    def test_gate_covers_the_e2e_lstm_case(self):
        from repro.bench.delta import ACCEPTANCE_CASES, quick_acceptance_config

        assert ("e2e_lstm", 256, 0.7) in ACCEPTANCE_CASES
        config = quick_acceptance_config()
        # The quick gate sweep must actually produce that case: the e2e LSTM
        # hidden size derives as min(max(widths) // 2, 256).
        assert "e2e" in config.families
        assert min(max(config.widths) // 2, 256) == 256
        assert 0.7 in config.rates
        assert config.optimizer == "sparse"


class TestBackendSelection:
    def test_unknown_backend_fails_fast(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            BenchmarkConfig(backend="cuda")

    def test_cli_unknown_backend_fails_fast_with_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_main(["--backend", "cuda"])
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
        err = capsys.readouterr().err
        assert "unknown execution backend 'cuda'" in err
        assert "numpy" in err and "stacked" in err

    def test_cli_list_backends(self, capsys):
        assert bench_main(["--list-backends"]) == 0
        printed = capsys.readouterr().out.split()
        assert "numpy" in printed and "fused" in printed and "stacked" in printed

    def test_stacked_backend_runs_plan_families(self):
        config = tiny_config(backend="stacked", families=("tile", "lstm_rec"))
        results = run_benchmark(config)
        assert [r.family for r in results] == ["tile", "lstm_rec"]
        for result in results:
            assert result.backend == "stacked"
            assert set(result.mode_ms) == {"masked", "compact", "pooled"}

    def test_fused_backend_runs_all_families(self):
        config = tiny_config(backend="fused")
        results = run_benchmark(config)
        assert [r.family for r in results] == ["row", "tile"]
        for result in results:
            assert result.backend == "fused"
            assert set(result.mode_ms) == {"masked", "compact", "pooled"}
            assert result.to_dict()["backend"] == "fused"

    def test_cli_backend_flag(self, tmp_path):
        output = str(tmp_path / "bench.json")
        assert bench_main(["--quick", "--families", "row",
                           "--backend", "fused", "--output", output]) == 0
        with open(output) as handle:
            report = json.load(handle)
        assert report["config"]["backend"] == "fused"
        assert all(entry["backend"] == "fused" for entry in report["results"])


class TestSharding:
    def test_shards_validation(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(shards=0)

    def test_case_descriptors_cover_grid_and_e2e(self):
        from repro.bench.harness import case_descriptors

        config = tiny_config(widths=(32, 48), rates=(0.5,),
                             families=("row", "tile", "e2e"))
        cases = case_descriptors(config)
        assert ("row", 32, 0.5) in cases and ("tile", 48, 0.5) in cases
        assert ("e2e_mlp", None, None) in cases
        assert ("e2e_lstm", None, None) in cases
        assert len(cases) == 6

    def test_sharded_run_matches_case_order(self):
        # Two worker processes (one BLAS domain each); results must come
        # back in descriptor order regardless of completion order.
        config = tiny_config(shards=2)
        results = run_benchmark(config)
        assert [r.family for r in results] == ["row", "tile"]
        for result in results:
            assert set(result.mode_ms) == {"masked", "compact", "pooled"}
            assert all(ms > 0 for ms in result.mode_ms.values())


class TestReport:
    def test_report_written_and_parseable(self, tmp_path):
        config = tiny_config(output=str(tmp_path / "BENCH_compact_engine.json"))
        results = run_benchmark(config)
        path = write_report(results, config)
        with open(path) as handle:
            report = json.load(handle)
        assert report["benchmark"] == "compact_engine"
        assert report["config"]["widths"] == [48]
        assert len(report["results"]) == len(results)
        for entry in report["results"]:
            assert {"family", "width", "rate", "mode_ms",
                    "speedup_pooled", "speedup_compact"} <= set(entry)
            assert set(entry["mode_ms"]) == {"masked", "compact", "pooled"}


class TestCLI:
    def test_parse_args_defaults(self):
        args = parse_args([])
        assert args.widths == [512, 1024, 2048]
        assert args.rates == [0.5, 0.7]
        assert args.output == "BENCH_compact_engine.json"

    def test_quick_end_to_end(self, tmp_path, capsys):
        output = str(tmp_path / "bench.json")
        exit_code = bench_main(["--quick", "--output", output,
                                "--families", "row"])
        assert exit_code == 0
        with open(output) as handle:
            report = json.load(handle)
        assert report["results"]
        printed = capsys.readouterr().out
        assert "speedup" in printed


class TestE2EFamily:
    """Whole-trainer-step benchmark cases built through ExecutionConfig."""

    def test_e2e_family_produces_mlp_and_lstm_cases(self):
        config = tiny_config(widths=(32,), batch=8, families=("e2e",))
        results = run_benchmark(config)
        assert [r.family for r in results] == ["e2e_mlp", "e2e_lstm"]
        for result in results:
            assert set(result.mode_ms) == {"masked", "compact", "pooled"}
            assert all(ms > 0 for ms in result.mode_ms.values())
            assert result.speedup_pooled > 0

    def test_e2e_float32_dtype(self):
        config = tiny_config(widths=(32,), batch=8, families=("e2e",),
                             e2e_dtype="float32")
        results = run_benchmark(config)
        assert len(results) == 2

    def test_e2e_in_default_families_and_cli(self):
        assert "e2e" in BenchmarkConfig().families
        args = parse_args([])
        assert "e2e" in args.families


class TestDeltaCheck:
    """The CI regression gate comparing fresh vs committed speedups."""

    @staticmethod
    def entry(family="row", width=2048, rate=0.7, speedup=4.0, backend="numpy"):
        return {"family": family, "width": width, "rate": rate,
                "speedup_pooled": speedup, "backend": backend}

    def test_no_regression_passes(self):
        from repro.bench import compare_reports

        fresh = [self.entry(speedup=3.9), self.entry("tile", speedup=3.5),
                 self.entry("head", speedup=1.9),
                 self.entry("head_vocab", width=50000, speedup=1.6),
                 self.entry("e2e_lstm", width=256, speedup=2.2)]
        baseline = [self.entry(speedup=4.0), self.entry("tile", speedup=3.6),
                    self.entry("head", speedup=2.0),
                    self.entry("head_vocab", width=50000, speedup=1.7),
                    self.entry("e2e_lstm", width=256, speedup=2.3)]
        assert compare_reports(fresh, baseline) == []

    def test_large_regression_fails(self):
        from repro.bench import compare_reports

        fresh = [self.entry(speedup=2.0), self.entry("tile", speedup=3.6),
                 self.entry("head", speedup=2.0),
                 self.entry("head_vocab", width=50000, speedup=1.7),
                 self.entry("e2e_lstm", width=256, speedup=2.3)]
        baseline = [self.entry(speedup=4.0), self.entry("tile", speedup=3.6),
                    self.entry("head", speedup=2.0),
                    self.entry("head_vocab", width=50000, speedup=1.7),
                    self.entry("e2e_lstm", width=256, speedup=2.3)]
        failures = compare_reports(fresh, baseline)
        assert len(failures) == 1
        assert "row" in failures[0] and "regressed" in failures[0]

    def test_small_regression_within_threshold_passes(self):
        from repro.bench import compare_reports

        fresh = [self.entry(speedup=3.0), self.entry("tile", speedup=3.0),
                 self.entry("head", speedup=3.0),
                 self.entry("head_vocab", width=50000, speedup=3.0),
                 self.entry("e2e_lstm", width=256, speedup=3.0)]
        baseline = [self.entry(speedup=4.0), self.entry("tile", speedup=4.0),
                    self.entry("head", speedup=4.0),
                    self.entry("head_vocab", width=50000, speedup=4.0),
                    self.entry("e2e_lstm", width=256, speedup=4.0)]
        assert compare_reports(fresh, baseline) == []  # 25% < 30%
        assert compare_reports(fresh, baseline, threshold=0.2)

    def test_missing_cases_fail(self):
        from repro.bench import compare_reports

        baseline = [self.entry(speedup=4.0), self.entry("tile", speedup=3.6),
                    self.entry("head", speedup=2.0)]
        failures = compare_reports([self.entry(speedup=4.0)], baseline)
        assert any("missing from the fresh run" in f for f in failures)
        failures = compare_reports(baseline, [self.entry(speedup=4.0)])
        assert any("missing from the committed baseline" in f for f in failures)

    def test_threshold_validation(self):
        from repro.bench import compare_reports

        with pytest.raises(ValueError):
            compare_reports([], [], threshold=1.5)

    def test_cli_compare_two_reports(self, tmp_path, capsys):
        from repro.bench.delta import main as delta_main

        baseline = {"results": [self.entry(speedup=4.0),
                                self.entry("tile", speedup=3.6),
                                self.entry("head", speedup=2.0),
                                self.entry("head_vocab", width=50000,
                                           speedup=1.7),
                                self.entry("e2e_lstm", width=256, speedup=2.3)]}
        # The fresh run also carries the e2e_dist scaling case and the
        # e2e_elastic recovery case: the CLI gate additionally enforces the
        # absolute scaling bar and the recovery budget on fresh entries.
        fresh = {"results": [self.entry(speedup=3.8),
                             self.entry("tile", speedup=3.5),
                             self.entry("head", speedup=1.9),
                             self.entry("head_vocab", width=50000,
                                        speedup=1.6),
                             self.entry("e2e_lstm", width=256, speedup=2.2),
                             dict(self.entry("e2e_dist", width=512,
                                             speedup=1.8),
                                  shards=2, cpu_count=4),
                             dict(self.entry("e2e_elastic", width=512,
                                             speedup=40.0),
                                  shards=2, cpu_count=4,
                                  mode_ms={"step": 50.0, "recover": 2000.0}),
                             serve_entry("serve_mlp", 2048),
                             serve_entry("serve_lstm", 256)]}
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(baseline))
        fresh_path.write_text(json.dumps(fresh))
        assert delta_main(["--baseline", str(baseline_path),
                           "--fresh", str(fresh_path)]) == 0
        fresh["results"][0]["speedup_pooled"] = 1.0
        fresh_path.write_text(json.dumps(fresh))
        assert delta_main(["--baseline", str(baseline_path),
                           "--fresh", str(fresh_path)]) == 1
        assert "BENCHMARK REGRESSION" in capsys.readouterr().out


class TestDeltaReportMismatches:
    """Satellite: clear, tested errors when the fresh and committed reports
    disagree on backend or case set (instead of a raw KeyError)."""

    entry = staticmethod(TestDeltaCheck.entry)

    def test_malformed_entry_raises_clear_error(self):
        from repro.bench import compare_reports

        good = [self.entry(), self.entry("tile")]
        bad = [{"family": "row", "width": 2048}]  # no rate / speedup_pooled
        with pytest.raises(ValueError, match="missing required fields"):
            compare_reports(bad, good)
        with pytest.raises(ValueError, match="baseline report entry"):
            compare_reports(good, bad)

    def test_backend_mismatch_fails_with_clear_message(self):
        from repro.bench import compare_reports

        baseline = [self.entry(), self.entry("tile"), self.entry("head"),
                    self.entry("head_vocab", width=50000),
                    self.entry("e2e_lstm", width=256)]
        fresh = [self.entry(backend="numpy"), self.entry("tile", backend="numpy"),
                 self.entry("head", backend="numpy"),
                 self.entry("head_vocab", width=50000, backend="numpy"),
                 self.entry("e2e_lstm", width=256, backend="numpy")]
        # Gating the fused backend against a fresh report that was actually
        # measured with numpy must fail loudly, not compare silently.
        failures = compare_reports(fresh, baseline, require_backend="fused")
        assert len(failures) == 5
        assert all("backend mismatch" in f for f in failures)
        assert compare_reports(fresh, baseline, require_backend="numpy") == []

    def test_fresh_entry_without_backend_field_fails_the_gate(self):
        from repro.bench import compare_reports

        baseline = [self.entry(), self.entry("tile"), self.entry("head"),
                    self.entry("head_vocab", width=50000),
                    self.entry("e2e_lstm", width=256)]
        fresh = [{k: v for k, v in self.entry(family, width=width).items()
                  if k != "backend"}
                 for family, width in (("row", 2048), ("tile", 2048),
                                       ("head", 2048), ("head_vocab", 50000),
                                       ("e2e_lstm", 256))]
        # A pre-backend-era report cannot prove which backend it measured:
        # the gate must refuse it rather than compare silently.
        failures = compare_reports(fresh, baseline, require_backend="stacked")
        assert len(failures) == 5
        assert all("does not record which backend" in f for f in failures)
        # Without a backend requirement (in-library use) it still compares.
        assert compare_reports(fresh, baseline) == []

    def test_case_set_disagreement_lists_every_missing_case(self):
        from repro.bench import compare_reports

        failures = compare_reports([], [self.entry(), self.entry("tile"),
                                        self.entry("head"),
                                        self.entry("head_vocab", width=50000),
                                        self.entry("e2e_lstm", width=256)])
        assert len(failures) == 5
        assert all("missing from the fresh run" in f for f in failures)

    def test_load_report_rejects_non_report_json(self, tmp_path):
        from repro.bench import load_report

        path = tmp_path / "not_a_report.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="not a benchmark report"):
            load_report(str(path))

    def test_cli_fresh_report_with_wrong_backend_fails(self, tmp_path, capsys):
        from repro.bench.delta import main as delta_main

        baseline = {"results": [self.entry(), self.entry("tile"),
                                self.entry("head")]}
        fresh = {"results": [dict(self.entry(family), backend="numpy")
                             for family in ("row", "tile", "head")]}
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(baseline))
        fresh_path.write_text(json.dumps(fresh))
        assert delta_main(["--baseline", str(baseline_path),
                           "--fresh", str(fresh_path),
                           "--backend", "fused"]) == 1
        assert "backend mismatch" in capsys.readouterr().out

    def test_cli_unknown_backend_fails_fast(self, capsys):
        from repro.bench.delta import main as delta_main

        with pytest.raises(SystemExit) as excinfo:
            delta_main(["--backend", "cuda"])
        assert excinfo.value.code == 2
        assert "unknown execution backend" in capsys.readouterr().err

    def test_cli_write_fresh_incompatible_with_fresh(self, tmp_path, capsys):
        from repro.bench.delta import main as delta_main

        fresh_path = tmp_path / "fresh.json"
        fresh_path.write_text(json.dumps({"results": []}))
        with pytest.raises(SystemExit) as excinfo:
            delta_main(["--fresh", str(fresh_path),
                        "--write-fresh", str(tmp_path / "out.json")])
        assert excinfo.value.code == 2
        assert "--write-fresh" in capsys.readouterr().err


class TestDistFamily:
    """The e2e_dist data-parallel scaling case and its report fields."""

    def test_in_family_registry_defaults_and_cli(self):
        assert "e2e_dist" in BenchmarkConfig.FAMILIES
        assert "e2e_dist" in BenchmarkConfig().families
        args = parse_args([])
        assert "e2e_dist" in args.families
        assert args.dist_shards == 2

    def test_dist_shards_validation(self):
        with pytest.raises(ValueError, match="dist_shards"):
            BenchmarkConfig(dist_shards=1)

    def test_case_descriptor(self):
        from repro.bench.harness import case_descriptors

        cases = case_descriptors(tiny_config(families=("e2e_dist",)))
        assert cases == [("e2e_dist", None, None)]

    def test_speedup_pooled_falls_back_to_scaling_ratio(self):
        from repro.bench.harness import BenchmarkResult

        result = BenchmarkResult(family="e2e_dist", width=512, in_features=784,
                                 batch=16, rate=0.7, steps=2, repeats=1,
                                 shards=2, cpu_count=4,
                                 mode_ms={"single": 4.0, "sharded": 2.0})
        assert result.speedup_pooled == 2.0
        assert result.speedup_compact is None
        entry = result.to_dict()
        assert entry["speedup_compact"] is None
        assert entry["speedup_pooled"] == 2.0
        assert entry["shards"] == 2 and entry["cpu_count"] == 4

    def test_case_runs_and_records_environment(self):
        # Spawns a real two-worker cluster (a couple of seconds).
        import os

        config = tiny_config(widths=(32,), batch=8, families=("e2e_dist",))
        (result,) = run_benchmark(config)
        assert set(result.mode_ms) == {"single", "sharded"}
        assert all(ms > 0 for ms in result.mode_ms.values())
        assert result.shards == 2
        assert result.cpu_count == os.cpu_count()
        assert result.speedup_pooled > 0

    def test_gate_covers_the_scaling_case(self):
        from repro.bench.delta import SCALING_CASES, quick_acceptance_config

        assert ("e2e_dist", 512, 0.7) in SCALING_CASES
        config = quick_acceptance_config()
        # The quick gate sweep must produce that exact case: the e2e_dist
        # hidden size derives as min(max(widths), 512).
        assert "e2e_dist" in config.families
        assert min(max(config.widths), 512) == 512
        assert 0.7 in config.rates


class TestScalingGate:
    """The absolute data-parallel scaling bar of the delta gate."""

    @staticmethod
    def entry(speedup=1.8, shards=2, cpu_count=4, **overrides):
        record = {"family": "e2e_dist", "width": 512, "rate": 0.7,
                  "speedup_pooled": speedup, "shards": shards,
                  "cpu_count": cpu_count}
        record.update(overrides)
        return record

    def test_passes_when_bar_met(self):
        from repro.bench.delta import scaling_failures

        failures, skips = scaling_failures([self.entry(speedup=1.8)])
        assert failures == [] and skips == []

    def test_fails_below_bar_with_enough_cores(self):
        from repro.bench.delta import scaling_failures

        failures, skips = scaling_failures([self.entry(speedup=1.1)])
        assert skips == []
        assert len(failures) == 1
        assert "below the 1.5x bar" in failures[0]

    def test_skips_when_machine_cannot_scale(self):
        from repro.bench.delta import scaling_failures

        # 2 workers + 1 coordinator on 1 core: sub-1x is physics, not a bug.
        failures, skips = scaling_failures([self.entry(speedup=0.4,
                                                       cpu_count=1)])
        assert failures == []
        assert len(skips) == 1
        assert "not enforced" in skips[0] and "1 CPU core" in skips[0]

    def test_missing_case_fails(self):
        from repro.bench.delta import scaling_failures

        failures, _ = scaling_failures([])
        assert len(failures) == 1
        assert "missing from the fresh run" in failures[0]

    def test_entry_without_environment_fields_fails(self):
        from repro.bench.delta import scaling_failures

        entry = {"family": "e2e_dist", "width": 512, "rate": 0.7,
                 "speedup_pooled": 2.0}
        failures, _ = scaling_failures([entry])
        assert len(failures) == 1
        assert "shards/cpu_count" in failures[0]

    def test_min_scaling_validation(self):
        from repro.bench.delta import scaling_failures

        with pytest.raises(ValueError, match="min_scaling"):
            scaling_failures([self.entry()], min_scaling=0.0)

    def test_cli_skip_path_on_small_machine(self, tmp_path, capsys):
        from repro.bench.delta import main as delta_main

        def base(family, width=2048):
            return {"family": family, "width": width, "rate": 0.7,
                    "speedup_pooled": 4.0, "backend": "numpy"}

        baseline = {"results": [base("row"), base("tile"), base("head"),
                                base("head_vocab", width=50000),
                                base("e2e_lstm", width=256)]}
        fresh = {"results": [base("row"), base("tile"), base("head"),
                             base("head_vocab", width=50000),
                             base("e2e_lstm", width=256),
                             dict(self.entry(speedup=0.4, cpu_count=1),
                                  backend="numpy"),
                             dict(base("e2e_elastic", width=512),
                                  shards=2, cpu_count=1,
                                  mode_ms={"step": 50.0,
                                           "recover": 90000.0}),
                             # pooled loses both serving metrics, but on a
                             # 1-core box that is the machine, not the engine.
                             serve_entry("serve_mlp", 2048, cpu_gated=True,
                                         p99_pooled=99.0, rps_pooled=100.0),
                             serve_entry("serve_lstm", 256, cpu_gated=True,
                                         p99_pooled=99.0, rps_pooled=100.0)]}
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(baseline))
        fresh_path.write_text(json.dumps(fresh))
        assert delta_main(["--baseline", str(baseline_path),
                           "--fresh", str(fresh_path)]) == 0
        out = capsys.readouterr().out
        assert "scaling gate skipped" in out
        # The over-budget recovery cycle is also excused on the 1-core box.
        assert "elastic gate skipped" in out
        assert "serving gate skipped" in out


class TestElasticFamily:
    """The e2e_elastic distributed step + worker-recovery benchmark case."""

    def test_in_family_registry_defaults_and_cli(self):
        assert "e2e_elastic" in BenchmarkConfig.FAMILIES
        assert "e2e_elastic" in BenchmarkConfig().families
        args = parse_args([])
        assert "e2e_elastic" in args.families

    def test_case_descriptor(self):
        from repro.bench.harness import case_descriptors

        cases = case_descriptors(tiny_config(families=("e2e_elastic",)))
        assert cases == [("e2e_elastic", None, None)]

    def test_speedup_pooled_is_recovery_cost_in_steps(self):
        from repro.bench.harness import BenchmarkResult

        result = BenchmarkResult(family="e2e_elastic", width=512,
                                 in_features=784, batch=16, rate=0.7, steps=2,
                                 repeats=1, shards=2, cpu_count=4,
                                 mode_ms={"step": 50.0, "recover": 2000.0})
        assert result.speedup_pooled == 40.0
        assert result.speedup_compact is None
        entry = result.to_dict()
        assert entry["mode_ms"] == {"step": 50.0, "recover": 2000.0}
        assert entry["speedup_pooled"] == 40.0

    def test_case_runs_and_records_environment(self):
        # Spawns a real two-worker cluster and runs two full recovery
        # cycles (respawn included), so this takes tens of seconds.
        import os

        config = tiny_config(widths=(32,), batch=8,
                             families=("e2e_elastic",))
        (result,) = run_benchmark(config)
        assert set(result.mode_ms) == {"step", "recover"}
        assert all(ms > 0 for ms in result.mode_ms.values())
        assert result.shards == 2
        assert result.cpu_count == os.cpu_count()

    def test_gate_covers_the_elastic_case(self):
        from repro.bench.delta import ELASTIC_CASES, quick_acceptance_config

        assert ("e2e_elastic", 512, 0.7) in ELASTIC_CASES
        config = quick_acceptance_config()
        # The quick gate sweep must produce that exact case: the e2e_elastic
        # hidden size derives as min(max(widths), 512).
        assert "e2e_elastic" in config.families
        assert min(max(config.widths), 512) == 512
        assert 0.7 in config.rates


class TestElasticGate:
    """The absolute recovery-time budget of the delta gate."""

    @staticmethod
    def entry(recover_ms=2000.0, shards=2, cpu_count=4, **overrides):
        record = {"family": "e2e_elastic", "width": 512, "rate": 0.7,
                  "speedup_pooled": recover_ms / 50.0, "shards": shards,
                  "cpu_count": cpu_count,
                  "mode_ms": {"step": 50.0, "recover": recover_ms}}
        record.update(overrides)
        return record

    def test_passes_within_budget(self):
        from repro.bench.delta import elastic_failures

        failures, skips = elastic_failures([self.entry()])
        assert failures == [] and skips == []

    def test_fails_over_budget_with_enough_cores(self):
        from repro.bench.delta import elastic_failures

        failures, skips = elastic_failures([self.entry(recover_ms=45000.0)])
        assert skips == []
        assert len(failures) == 1
        assert "over the 30s budget" in failures[0]

    def test_skips_on_cpu_starved_machine(self):
        from repro.bench.delta import elastic_failures

        # 2 respawning workers + coordinator on 1 core: slow is physics.
        failures, skips = elastic_failures([self.entry(recover_ms=45000.0,
                                                       cpu_count=1)])
        assert failures == []
        assert len(skips) == 1
        assert "not enforced" in skips[0] and "1 CPU core" in skips[0]

    def test_missing_case_fails(self):
        from repro.bench.delta import elastic_failures

        failures, _ = elastic_failures([])
        assert len(failures) == 1
        assert "missing from the fresh run" in failures[0]

    def test_entry_without_timings_fails(self):
        from repro.bench.delta import elastic_failures

        entry = {"family": "e2e_elastic", "width": 512, "rate": 0.7,
                 "speedup_pooled": 40.0, "shards": 2, "cpu_count": 4}
        failures, _ = elastic_failures([entry])
        assert len(failures) == 1
        assert "recover/step timings" in failures[0]

    def test_entry_without_environment_fields_fails(self):
        from repro.bench.delta import elastic_failures

        entry = self.entry()
        del entry["shards"], entry["cpu_count"]
        failures, _ = elastic_failures([entry])
        assert len(failures) == 1
        assert "shards/cpu_count" in failures[0]

    def test_budget_validation(self):
        from repro.bench.delta import elastic_failures

        with pytest.raises(ValueError, match="max_recovery_s"):
            elastic_failures([self.entry()], max_recovery_s=0.0)

class TestServeFamily:
    """The serve inference case: per-request baseline vs micro-batched engine."""

    def test_in_family_registry_defaults_and_cli(self):
        assert "serve" in BenchmarkConfig.FAMILIES
        assert "serve" in BenchmarkConfig().families
        args = parse_args([])
        assert "serve" in args.families
        assert args.serve_requests == 10000
        assert args.serve_concurrency == 8

    def test_serve_knob_validation(self):
        with pytest.raises(ValueError, match="serve_requests"):
            BenchmarkConfig(serve_requests=0)
        with pytest.raises(ValueError, match="serve_concurrency"):
            BenchmarkConfig(serve_concurrency=0)

    def test_case_descriptors(self):
        from repro.bench.harness import case_descriptors

        cases = case_descriptors(tiny_config(families=("serve",)))
        assert cases == [("serve_mlp", None, None), ("serve_lstm", None, None)]

    def test_cases_run_and_record_load_reports(self):
        import os

        config = tiny_config(families=("serve",), serve_requests=30,
                             serve_concurrency=2)
        mlp, lstm = run_benchmark(config)
        assert mlp.family == "serve_mlp" and lstm.family == "serve_lstm"
        for result in (mlp, lstm):
            assert set(result.mode_ms) == {"masked", "pooled"}
            assert all(ms > 0 for ms in result.mode_ms.values())
            assert result.cpu_count == os.cpu_count()
            assert isinstance(result.cpu_gated, bool)
            serving = result.serving
            assert serving["concurrency"] == 2
            assert serving["max_batch"] == 2
            for mode in ("masked", "pooled"):
                report = serving[mode]
                assert report["p99_ms"] >= report["p50_ms"] >= 0
                assert report["throughput_rps"] > 0
            # Every request went through the batcher exactly once.
            assert serving["mean_occupancy"] > 0
        assert mlp.serving["masked"]["requests"] == 30
        assert lstm.serving["masked"]["requests"] == 200  # floor of the tenth

    def test_report_round_trips_serving_fields(self, tmp_path):
        config = tiny_config(families=("serve",), serve_requests=20,
                             serve_concurrency=2,
                             output=str(tmp_path / "serve.json"))
        results = run_benchmark(config)
        path = write_report(results, config)
        report = json.loads(open(path).read())
        assert report["config"]["serve_requests"] == 20
        assert report["config"]["serve_concurrency"] == 2
        for entry in report["results"]:
            assert "cpu_gated" in entry
            assert set(entry["serving"]) >= {"masked", "pooled",
                                             "concurrency", "max_batch"}

    def test_gate_covers_the_serve_cases(self):
        from repro.bench.delta import SERVE_CASES, quick_acceptance_config

        assert ("serve_mlp", 2048, 0.7) in SERVE_CASES
        assert ("serve_lstm", 256, 0.7) in SERVE_CASES
        config = quick_acceptance_config()
        assert "serve" in config.families
        # The quick gate sweep must produce those exact cases: the serve
        # hidden sizes derive as min(max(widths), 2048) and
        # min(max(widths) // 2, 256).
        assert min(max(config.widths), 2048) == 2048
        assert min(max(config.widths) // 2, 256) == 256


class TestServingGate:
    """The absolute serving dominance bar of the delta gate."""

    def test_passes_when_pooled_dominates(self):
        from repro.bench.delta import serving_failures

        failures, skips = serving_failures(
            [serve_entry("serve_mlp", 2048), serve_entry("serve_lstm", 256)])
        assert failures == [] and skips == []

    def test_fails_when_pooled_loses_p99(self):
        from repro.bench.delta import serving_failures

        failures, skips = serving_failures(
            [serve_entry("serve_mlp", 2048, p99_pooled=99.0),
             serve_entry("serve_lstm", 256)])
        assert skips == []
        assert len(failures) == 1
        assert "p99 latency" in failures[0]
        assert "serve_mlp" in failures[0]

    def test_fails_when_pooled_loses_throughput(self):
        from repro.bench.delta import serving_failures

        failures, _ = serving_failures(
            [serve_entry("serve_mlp", 2048, rps_pooled=100.0),
             serve_entry("serve_lstm", 256)])
        assert len(failures) == 1
        assert "throughput" in failures[0]

    def test_skips_on_cpu_gated_entry(self):
        from repro.bench.delta import serving_failures

        # Losing both metrics on a 1-core box is the machine, not the engine.
        failures, skips = serving_failures(
            [serve_entry("serve_mlp", 2048, cpu_gated=True, p99_pooled=99.0,
                         rps_pooled=100.0),
             serve_entry("serve_lstm", 256)])
        assert failures == []
        assert len(skips) == 1
        assert "not enforced" in skips[0]

    def test_missing_case_fails(self):
        from repro.bench.delta import serving_failures

        failures, _ = serving_failures([serve_entry("serve_mlp", 2048)])
        assert len(failures) == 1
        assert "serve_lstm" in failures[0]
        assert "missing from the fresh run" in failures[0]

    def test_entry_without_load_reports_fails(self):
        from repro.bench.delta import serving_failures

        entry = serve_entry("serve_mlp", 2048)
        entry["serving"] = None
        failures, _ = serving_failures(
            [entry, serve_entry("serve_lstm", 256)])
        assert len(failures) == 1
        assert "load" in failures[0]


class TestCpuGatedStamp:
    """The cpu_gated stamp written by the harness and read by the gates."""

    def test_dist_entry_stamped_by_core_count(self):
        from repro.bench.harness import BenchmarkResult

        result = BenchmarkResult(family="e2e_dist", width=512, in_features=784,
                                 batch=16, rate=0.7, steps=2, repeats=1,
                                 shards=2, cpu_count=1, cpu_gated=True,
                                 mode_ms={"single": 4.0, "sharded": 8.0})
        assert result.to_dict()["cpu_gated"] is True

    def test_gates_prefer_the_stamp_over_recomputation(self):
        from repro.bench.delta import _entry_cpu_gated

        # Stamp wins in both directions...
        assert _entry_cpu_gated({"cpu_gated": True, "shards": 2,
                                 "cpu_count": 16}) is True
        assert _entry_cpu_gated({"cpu_gated": False, "shards": 2,
                                 "cpu_count": 1}) is False
        # ...and pre-stamp reports fall back to cpu_count < shards + 1.
        assert _entry_cpu_gated({"shards": 2, "cpu_count": 1}) is True
        assert _entry_cpu_gated({"shards": 2, "cpu_count": 4}) is False
        assert _entry_cpu_gated({}) is False

    def test_committed_report_stamps_the_starved_dist_entry(self):
        import pathlib

        report = json.loads(
            pathlib.Path("BENCH_compact_engine.json").read_text())
        by_family = {}
        for entry in report["results"]:
            by_family.setdefault(entry["family"], entry)
        dist = by_family["e2e_dist"]
        # The committed 0.498x was measured on a 1-core box: the stamp keeps
        # the scaling gate (and readers) from reading it as a regression.
        if int(dist["cpu_count"]) < int(dist["shards"]) + 1:
            assert dist.get("cpu_gated") is True
        assert "serve_mlp" in by_family and "serve_lstm" in by_family
