"""Bit-identity tests for the frozen inference engine.

The engine's contract is exact: for every execution backend and dtype, its
``infer()`` output equals the model's own eval-mode ``forward()`` bit for
bit (``np.array_equal``, not ``allclose``).  The tests sweep both model
kinds, every registered backend, both recurrent modes and every dropout
strategy, because each combination interns a different frozen program
(plain dense, DropConnect-scaled weights, recurrent-site weights, ...).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.execution import EngineRuntime, ExecutionConfig
from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel
from repro.models.mlp import MLPClassifier, MLPConfig
from repro.serving import InferenceEngine
from repro.tensor.tensor import Tensor, no_grad

BACKENDS = ("numpy", "fused", "stacked")


def make_mlp(strategy: str, seed: int = 3) -> MLPClassifier:
    return MLPClassifier(MLPConfig(
        input_size=20, hidden_sizes=(24, 16), num_classes=5,
        drop_rates=(0.5, 0.5), strategy=strategy, seed=seed))


def make_lm(strategy: str, seed: int = 3) -> LSTMLanguageModel:
    return LSTMLanguageModel(LSTMConfig(
        vocab_size=40, embed_size=12, hidden_size=12, num_layers=2,
        drop_rates=(0.5, 0.5), strategy=strategy, seed=seed))


def bind(model, **overrides) -> EngineRuntime:
    config = ExecutionConfig(**{"mode": "pooled", "dtype": "float64",
                                **overrides})
    runtime = EngineRuntime(config)
    runtime.bind(model)
    return runtime


class TestMLPBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("strategy", ["none", "original", "row", "tile"])
    def test_matches_eval_forward(self, backend, strategy, rng):
        model = make_mlp(strategy)
        runtime = bind(model, backend=backend)
        engine = InferenceEngine(model, runtime=runtime)
        x = rng.normal(size=(7, 20))
        model.eval()
        with no_grad():
            expected = model(Tensor(x)).data
        assert np.array_equal(engine.infer(x), expected)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_dtypes(self, dtype, rng):
        model = make_mlp("row")
        runtime = bind(model, dtype=dtype)
        engine = InferenceEngine(model, runtime=runtime)
        x = rng.normal(size=(5, 20)).astype(runtime.np_dtype)
        model.eval()
        with no_grad():
            expected = model(Tensor(x, dtype=runtime.np_dtype)).data
        out = engine.infer(x)
        assert out.dtype == expected.dtype
        assert np.array_equal(out, expected)

    def test_repeated_calls_reuse_workspace(self, rng):
        """The interned scratch ring serves every call without growing."""
        model = make_mlp("row")
        engine = InferenceEngine(model, runtime=bind(model))
        model.eval()
        for _ in range(3):
            x = rng.normal(size=(4, 20))
            with no_grad():
                expected = model(Tensor(x)).data
            assert np.array_equal(engine.infer(x), expected)
        assert engine.infer_calls == 3
        assert engine.rows_served == 12

    def test_oversized_batch_widens_ring(self, rng):
        model = make_mlp("row")
        runtime = bind(model, serve_max_batch=2)
        engine = InferenceEngine(model, runtime=runtime)
        model.eval()
        x = rng.normal(size=(9, 20))
        with no_grad():
            expected = model(Tensor(x)).data
        assert np.array_equal(engine.infer(x), expected)
        assert engine.max_rows == 9


class TestLSTMBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("recurrent", ["dense", "tiled"])
    def test_matches_eval_forward(self, backend, recurrent, rng):
        model = make_lm("row")
        runtime = bind(model, backend=backend, recurrent=recurrent)
        engine = InferenceEngine(model, runtime=runtime)
        tokens = rng.integers(0, 40, size=(6, 3))
        model.eval()
        with no_grad():
            expected, expected_state = model(tokens)
        logits, state = engine.infer(tokens)
        assert np.array_equal(logits, expected.data)
        for (h, c), (eh, ec) in zip(state, expected_state):
            assert np.array_equal(h, eh.data)
            assert np.array_equal(c, ec.data)

    def test_carried_state(self, rng):
        """Chained windows through the engine equal chained eval forwards."""
        model = make_lm("row")
        engine = InferenceEngine(model, runtime=bind(model))
        model.eval()
        state = None
        expected_state = None
        for _ in range(3):
            tokens = rng.integers(0, 40, size=(4, 2))
            with no_grad():
                expected, expected_state = model(tokens, expected_state)
            logits, state = engine.infer(tokens, state)
            assert np.array_equal(logits, expected.data)

    def test_token_range_check(self):
        model = make_lm("row")
        engine = InferenceEngine(model, runtime=bind(model))
        with pytest.raises((ValueError, IndexError)):
            engine.infer(np.full((3, 2), 40, dtype=np.int64))


class TestInferRequests:
    def test_mlp_rows_match_per_request_forward(self, rng):
        model = make_mlp("row")
        engine = InferenceEngine(model, runtime=bind(model))
        model.eval()
        requests = [rng.normal(size=20) for _ in range(5)]
        outputs = engine.infer_requests(requests)
        assert len(outputs) == 5
        with no_grad():
            for request, output in zip(requests, outputs):
                expected = model(Tensor(request[None, :])).data[0]
                assert np.allclose(output, expected)

    def test_lm_variable_lengths_unpadded(self, rng):
        """Padding never leaks into a request's real positions."""
        model = make_lm("row")
        engine = InferenceEngine(model, runtime=bind(model))
        model.eval()
        requests = [rng.integers(0, 40, size=length)
                    for length in (3, 7, 1, 5)]
        outputs = engine.infer_requests(requests)
        with no_grad():
            for request, output in zip(requests, outputs):
                assert output.shape == (len(request), 40)
                expected, _ = model(np.asarray(request)[:, None])
                assert np.allclose(output,
                                   expected.data.reshape(len(request), 40))

    def test_empty_request_list(self):
        model = make_mlp("row")
        engine = InferenceEngine(model, runtime=bind(model))
        assert engine.infer_requests([]) == []


class TestServingStats:
    def test_runtime_stats_section(self, rng):
        model = make_mlp("row")
        runtime = bind(model)
        engine = InferenceEngine(model, runtime=runtime)
        engine.infer(rng.normal(size=(4, 20)))
        serving = runtime.stats()["serving"]
        assert serving["engines"] == 1
        assert serving["infer_calls"] == 1
        assert serving["rows"] == 4

    def test_serve_knob_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(serve_max_batch=0)
        with pytest.raises(ValueError):
            ExecutionConfig(serve_max_wait_ms=-1.0)
