"""Micro-batcher tests: fan-out correctness, batching behaviour, shutdown.

Fan-out results are compared with ``np.allclose`` rather than bitwise
equality: a request answered alone runs an m=1 GEMM and the same request
pooled into a batch runs an m=N GEMM, and BLAS does not promise the two
blockings produce bitwise-identical sums.  (The *engine* itself is bitwise
against eval ``forward()`` at equal batch shapes — that contract lives in
``test_engine.py``.)
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.execution import EngineRuntime, ExecutionConfig
from repro.models.mlp import MLPClassifier, MLPConfig
from repro.serving import InferenceEngine, MicroBatcher
from repro.tensor.tensor import Tensor, no_grad


def make_engine(**config_overrides) -> InferenceEngine:
    model = MLPClassifier(MLPConfig(
        input_size=12, hidden_sizes=(16,), num_classes=4,
        drop_rates=(0.5,), strategy="row", seed=11))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", dtype="float64", **config_overrides))
    runtime.bind(model)
    return InferenceEngine(model, runtime=runtime)


def reference(engine: InferenceEngine, request: np.ndarray) -> np.ndarray:
    engine.model.eval()
    with no_grad():
        return engine.model(Tensor(request[None, :])).data[0]


class TestFanOut:
    def test_each_future_gets_its_own_row(self, rng):
        engine = make_engine()
        requests = [rng.normal(size=12) for _ in range(10)]
        with MicroBatcher(engine, max_batch=4, max_wait_ms=5.0) as batcher:
            futures = [batcher.submit(request) for request in requests]
            outputs = [future.result(timeout=10) for future in futures]
        for request, output in zip(requests, outputs):
            assert np.allclose(output, reference(engine, request))

    def test_interleaved_arrivals_from_many_threads(self, rng):
        """Concurrent submitters each get back their own request's answer."""
        engine = make_engine()
        requests = [rng.normal(size=12) for _ in range(40)]
        outputs: list = [None] * len(requests)

        with MicroBatcher(engine, max_batch=8, max_wait_ms=2.0) as batcher:
            def submitter(indices):
                for index in indices:
                    future = batcher.submit(requests[index])
                    outputs[index] = future.result(timeout=10)
                    time.sleep(0.0005)

            threads = [threading.Thread(target=submitter,
                                        args=(range(start, 40, 4),))
                       for start in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        for request, output in zip(requests, outputs):
            assert np.allclose(output, reference(engine, request))
        assert batcher.requests_served == 40

    def test_full_wave_forms_one_batch(self, rng):
        """max_batch queued requests execute as a single pooled step."""
        engine = make_engine()
        # A long wait window, so the batch boundary is the size bound.
        with MicroBatcher(engine, max_batch=6, max_wait_ms=500.0) as batcher:
            futures = [batcher.submit(rng.normal(size=12)) for _ in range(6)]
            for future in futures:
                future.result(timeout=10)
            assert batcher.batches_formed == 1
            assert batcher.requests_served == 6

    def test_asyncio_entry_point(self, rng):
        engine = make_engine()
        requests = [rng.normal(size=12) for _ in range(5)]

        async def drive(batcher):
            return await asyncio.gather(
                *(batcher.submit_async(request) for request in requests))

        with MicroBatcher(engine, max_batch=4, max_wait_ms=2.0) as batcher:
            outputs = asyncio.run(drive(batcher))
        for request, output in zip(requests, outputs):
            assert np.allclose(output, reference(engine, request))


class TestShutdown:
    def test_close_flushes_every_accepted_future(self, rng):
        """No future accepted before close() is ever dropped unresolved."""
        engine = make_engine()
        batcher = MicroBatcher(engine, max_batch=4, max_wait_ms=50.0)
        futures = [batcher.submit(rng.normal(size=12)) for _ in range(11)]
        batcher.close()
        for future in futures:
            assert future.done()
            assert future.result().shape == (4,)

    def test_submit_after_close_raises(self, rng):
        engine = make_engine()
        batcher = MicroBatcher(engine)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(rng.normal(size=12))

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(make_engine())
        batcher.close()
        batcher.close()

    def test_engine_error_fans_out_to_futures(self):
        """A failing batch resolves every member future with the exception."""
        engine = make_engine()
        batcher = MicroBatcher(engine, max_batch=2, max_wait_ms=500.0)
        futures = [batcher.submit(np.zeros((3, 3, 3)))  # bad request shape
                   for _ in range(2)]
        with pytest.raises(Exception):
            futures[0].result(timeout=10)
        with pytest.raises(Exception):
            futures[1].result(timeout=10)
        # The worker survives a failing batch and keeps serving.
        good = batcher.submit(np.zeros(12))
        assert good.result(timeout=10).shape == (4,)
        batcher.close()


class TestConfiguration:
    def test_defaults_come_from_engine_config(self):
        engine = make_engine(serve_max_batch=17, serve_max_wait_ms=3.5)
        batcher = MicroBatcher(engine)
        assert batcher.max_batch == 17
        assert batcher.max_wait_ms == 3.5
        batcher.close()

    def test_invalid_bounds_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_wait_ms=-1.0)

    def test_runtime_stats_fold_engine_and_batcher(self, rng):
        engine = make_engine()
        with MicroBatcher(engine, max_batch=4, max_wait_ms=2.0) as batcher:
            futures = [batcher.submit(rng.normal(size=12)) for _ in range(8)]
            for future in futures:
                future.result(timeout=10)
        serving = engine.runtime.stats()["serving"]
        assert serving["engines"] == 1
        assert serving["batchers"] == 1
        assert serving["requests"] == 8
        assert serving["rows"] == 8
        assert serving["queue_depth"] == 0
        assert serving["mean_occupancy"] > 0
