"""Load-generator tests: report arithmetic and both driver shapes."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serving import (LoadReport, run_closed_loop, run_open_loop,
                           run_rate_sweep)
from repro.serving.loadgen import _report


class TestReport:
    def test_quantiles_and_throughput(self):
        latencies = [0.010] * 99 + [0.100]
        report = _report(latencies, elapsed_s=2.0)
        assert report.requests == 100
        assert report.throughput_rps == pytest.approx(50.0)
        assert report.p50_ms == pytest.approx(10.0)
        assert report.p99_ms > report.p50_ms
        assert report.mean_ms == pytest.approx(10.9)

    def test_to_dict_round_trips_fields(self):
        report = _report([0.001, 0.002], elapsed_s=0.5)
        data = report.to_dict()
        assert set(data) == {"requests", "elapsed_s", "throughput_rps",
                             "mean_ms", "p50_ms", "p99_ms"}
        assert data["requests"] == 2

    def test_empty_run(self):
        report = _report([], elapsed_s=0.0)
        assert report == LoadReport(0, 0.0, 0.0, 0.0, 0.0, 0.0)


class TestClosedLoop:
    def test_serves_every_request_exactly_once(self):
        seen = []
        lock = threading.Lock()

        def submit(request):
            with lock:
                seen.append(request)
            return request * 2

        report = run_closed_loop(submit, list(range(50)), concurrency=4)
        assert report.requests == 50
        assert sorted(seen) == list(range(50))
        assert report.p50_ms >= 0

    def test_future_results_are_awaited(self):
        def submit(request):
            future = Future()
            future.set_result(request)
            return future

        report = run_closed_loop(submit, list(range(10)), concurrency=2)
        assert report.requests == 10

    def test_invalid_concurrency(self):
        with pytest.raises(ValueError):
            run_closed_loop(lambda request: request, [1], concurrency=0)


class TestOpenLoop:
    def test_poisson_arrivals_all_complete(self):
        served = []

        def submit(request):
            served.append(request)
            return request

        report = run_open_loop(submit, list(range(30)), rate_rps=2000.0,
                               seed=0)
        assert report.requests == 30
        assert sorted(served) == list(range(30))

    def test_latency_charged_from_scheduled_arrival(self):
        """A slow server's queueing delay shows up in the percentiles."""
        def submit(request):
            time.sleep(0.005)
            return request

        report = run_open_loop(submit, list(range(10)), rate_rps=10000.0,
                               seed=0)
        # Each request serialises behind the previous ones' 5ms service
        # time, so the p99 reflects accumulated queueing, not just 5ms.
        assert report.p99_ms > 20.0

    def test_async_futures_resolve_off_thread(self):
        resolved = []

        def submit(request):
            future = Future()

            def finish():
                future.set_result(request)
                resolved.append(request)

            threading.Timer(0.001, finish).start()
            return future

        report = run_open_loop(submit, list(range(20)), rate_rps=5000.0,
                               seed=1)
        assert report.requests == 20
        assert sorted(resolved) == list(range(20))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            run_open_loop(lambda request: request, [1], rate_rps=0.0)


class TestRateSweep:
    def test_one_report_per_rate_in_order(self):
        def submit(request):
            return request

        reports = run_rate_sweep(submit, list(range(20)),
                                 rates_rps=[500.0, 2000.0, 8000.0], seed=0)
        assert len(reports) == 3
        assert all(isinstance(report, LoadReport) for report in reports)
        assert all(report.requests == 20 for report in reports)
        # Higher offered rates compress the arrival schedule.
        elapsed = [report.elapsed_s for report in reports]
        assert elapsed[0] > elapsed[-1]

    def test_quantiles_rise_toward_saturation(self):
        """A fixed-service-time server shows queueing delay at rates beyond
        its capacity (1 / 2ms = 500 req/s) but not far below it."""
        def submit(request):
            time.sleep(0.002)
            return request

        relaxed, saturated = run_rate_sweep(submit, list(range(25)),
                                            rates_rps=[100.0, 5000.0], seed=0)
        assert saturated.p99_ms > relaxed.p99_ms

    def test_seeded_sweep_is_deterministic(self):
        def submit(request):
            return request

        first = run_rate_sweep(submit, list(range(15)), rates_rps=(3000.0,),
                               seed=4)[0]
        second = run_rate_sweep(submit, list(range(15)), rates_rps=(3000.0,),
                                seed=4)[0]
        assert first.requests == second.requests == 15

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            run_rate_sweep(lambda request: request, [1], rates_rps=[])
        with pytest.raises(ValueError, match="> 0"):
            run_rate_sweep(lambda request: request, [1],
                           rates_rps=[100.0, 0.0])


class TestDeterminism:
    def test_seeded_arrival_schedule_is_reproducible(self):
        gaps = []

        def submit(request):
            gaps.append(time.perf_counter())
            return request

        run_open_loop(submit, list(range(5)), rate_rps=500.0, seed=7)
        first = np.diff(gaps)
        gaps.clear()
        run_open_loop(submit, list(range(5)), rate_rps=500.0, seed=7)
        second = np.diff(gaps)
        # Same seed, same exponential gaps — arrival spacing matches to
        # scheduler jitter.
        assert np.allclose(first, second, atol=0.05)
