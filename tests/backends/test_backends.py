"""Tests for the pluggable execution-backend subsystem.

Three areas are covered:

* the registry contract — round-trip of a custom backend, fail-fast on
  unknown names (both directly and through ``ExecutionConfig``), factory
  validation;
* numerical equivalence — the ``fused`` backend must agree with the
  reference ``numpy`` backend on every compact op (forward and all
  gradients) across a property sweep of layer shapes, periods and tiles;
* runtime integration — ``EngineRuntime`` installs its backend instance on
  the bound model's layers and reports per-backend call counts in
  ``stats()``.
"""

import numpy as np
import pytest

from repro.backends import (
    ExecutionBackend,
    FusedBackend,
    NumpyBackend,
    StackedBackend,
    available_backends,
    create_backend,
    default_backend,
    register_backend,
    unregister_backend,
)
from repro.dropout.compact_ops import (
    input_compact_linear,
    recurrent_compact_context,
    recurrent_compact_linear,
    recurrent_context_linear,
    row_compact_linear,
    tile_compact_linear,
)
from repro.dropout.engine import CompactWorkspace
from repro.dropout.patterns import (
    RecurrentTilePattern,
    RowDropoutPattern,
    TileDropoutPattern,
)
from repro.execution import EngineRuntime, ExecutionConfig
from repro.models import MLPClassifier, MLPConfig
from repro.tensor import Tensor


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "fused" in names

    def test_create_returns_fresh_instances(self):
        first, second = create_backend("numpy"), create_backend("numpy")
        assert isinstance(first, NumpyBackend)
        assert first is not second  # counters must not be shared

    def test_unknown_backend_fails_fast_with_available_list(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("cuda")
        with pytest.raises(ValueError, match="available"):
            create_backend("cuda")

    def test_execution_config_consults_registry(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            ExecutionConfig(backend="bogus")

    def test_round_trip_custom_backend(self):
        class EchoBackend(NumpyBackend):
            name = "echo"

        register_backend("echo", EchoBackend)
        try:
            assert "echo" in available_backends()
            backend = create_backend("echo")
            assert isinstance(backend, EchoBackend)
            # A registered backend is immediately selectable everywhere the
            # config is validated.
            config = ExecutionConfig(backend="echo")
            assert isinstance(EngineRuntime(config).backend, EchoBackend)
        finally:
            unregister_backend("echo")
        assert "echo" not in available_backends()
        with pytest.raises(ValueError):
            ExecutionConfig(backend="echo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_factory_must_return_backend(self):
        register_backend("broken", lambda: object())
        try:
            with pytest.raises(TypeError):
                create_backend("broken")
        finally:
            unregister_backend("broken")

    def test_abstract_interface_not_instantiable(self):
        with pytest.raises(TypeError):
            ExecutionBackend()


def _random_operands(rng, batch, rows, cols):
    x = Tensor(rng.normal(size=(batch, cols)), requires_grad=True)
    weight = Tensor(rng.normal(size=(rows, cols)) * 0.1, requires_grad=True)
    bias = Tensor(rng.normal(size=rows), requires_grad=True)
    return x, weight, bias


def _run_and_collect(op):
    """Run ``op`` (returning a Tensor) and collect output + operand grads."""
    out = op()
    seed_grad = np.random.default_rng(99).normal(size=out.shape)
    (out * Tensor(seed_grad)).sum().backward()
    return out


class TestFusedEquivalence:
    """Property sweep: fused and numpy backends compute the same function."""

    TILE_CASES = [
        # (rows, cols, dp, bias, tile) — square, ragged, tiny-tile, dp=1,
        # more periods than tile-rows (forces the leftover loop path).
        (96, 96, 3, 1, 32),
        (96, 80, 4, 2, 32),
        (64, 64, 1, 0, 32),
        (70, 50, 5, 3, 16),
        (33, 95, 5, 0, 8),
        (32, 128, 7, 2, 32),
        (160, 64, 6, 5, 32),
        # grid_rows > dp with grid_cols % dp != 0: non-adjacent tile-rows
        # share a column set, exercising the fused class path proper.
        (256, 128, 3, 1, 32),
        (192, 160, 3, 0, 32),
        (256, 128, 3, 2, 32),
    ]

    @pytest.mark.parametrize("rows,cols,dp,bias_phase,tile", TILE_CASES)
    def test_tile_compact_linear_matches_numpy(self, rows, cols, dp, bias_phase, tile):
        pattern = TileDropoutPattern(rows=rows, cols=cols, dp=dp,
                                     bias=bias_phase, tile=tile)
        captured = []
        for backend in (NumpyBackend(), FusedBackend()):
            rng = np.random.default_rng(7)
            x, weight, bias = _random_operands(rng, 9, rows, cols)
            out = _run_and_collect(lambda: tile_compact_linear(
                x, weight, bias, pattern, scale_factor=1.3, backend=backend))
            captured.append((out.data.copy(), x.grad.copy(),
                             weight.grad.copy(), bias.grad.copy()))
        reference, fused = captured
        for ref, got in zip(reference, fused):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)
        # The sparsity structure must agree exactly: dropped tiles receive
        # exactly zero output and gradient under both backends.
        np.testing.assert_array_equal(reference[2] == 0.0, fused[2] == 0.0)

    @pytest.mark.parametrize("num_units,dp,bias_phase", [
        (64, 2, 1), (96, 5, 3), (33, 4, 0),
    ])
    def test_row_compact_linear_matches_numpy(self, num_units, dp, bias_phase):
        pattern = RowDropoutPattern(num_units, dp, bias_phase)
        input_pattern = RowDropoutPattern(48, 3, 1)
        captured = []
        for backend in (NumpyBackend(), FusedBackend()):
            rng = np.random.default_rng(3)
            x, weight, bias = _random_operands(rng, 6, num_units, 48)
            out = _run_and_collect(lambda: row_compact_linear(
                x, weight, bias, pattern, input_pattern=input_pattern,
                scale_factor=1.5, backend=backend))
            captured.append((out.data.copy(), x.grad.copy(),
                             weight.grad.copy(), bias.grad.copy()))
        for ref, got in zip(*captured):
            np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    def test_input_compact_linear_matches_numpy(self):
        input_pattern = RowDropoutPattern(40, 4, 1)
        captured = []
        for backend in (NumpyBackend(), FusedBackend()):
            rng = np.random.default_rng(5)
            x, weight, bias = _random_operands(rng, 7, 24, 40)
            out = _run_and_collect(lambda: input_compact_linear(
                x, weight, bias, input_pattern, backend=backend))
            captured.append((out.data.copy(), x.grad.copy(),
                             weight.grad.copy(), bias.grad.copy()))
        for ref, got in zip(*captured):
            np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    def test_fused_with_workspace_matches_fresh_buffers(self):
        pattern = TileDropoutPattern(rows=96, cols=96, dp=3, bias=1, tile=32)
        backend = FusedBackend()
        workspace = CompactWorkspace()
        rng = np.random.default_rng(11)
        x, weight, bias = _random_operands(rng, 5, 96, 96)
        with_ws = _run_and_collect(lambda: tile_compact_linear(
            x, weight, bias, pattern, workspace=workspace, backend=backend))
        grads_ws = (x.grad.copy(), weight.grad.copy())
        x.zero_grad(), weight.zero_grad(), bias.zero_grad()
        without = _run_and_collect(lambda: tile_compact_linear(
            x, weight, bias, pattern, backend=backend))
        np.testing.assert_allclose(with_ws.data, without.data)
        np.testing.assert_allclose(grads_ws[0], x.grad)
        np.testing.assert_allclose(grads_ws[1], weight.grad)

    def test_fused_layout_cached_per_pattern(self):
        backend = FusedBackend()
        pattern = TileDropoutPattern(rows=96, cols=96, dp=3, bias=1, tile=32)
        rng = np.random.default_rng(0)
        x, weight, bias = _random_operands(rng, 4, 96, 96)
        for _ in range(3):
            tile_compact_linear(x, weight, bias, pattern, backend=backend)
        assert backend.calls.get("plan_fuse") == 1  # compiled once, reused
        assert backend.calls.get("tile_forward") == 3

    def test_fused_predicted_time_accumulates(self):
        from repro.gpu.device import GTX_1080TI

        backend = FusedBackend(predict_device=GTX_1080TI)
        # 8 tile-rows, grid_cols=4, dp=3: the column phase cycles per
        # tile-row, so non-adjacent tile-rows share column sets and actually
        # get fused (adjacent identical sets are already merged by the plan
        # compiler, and with grid_rows <= dp every class is a singleton).
        pattern = TileDropoutPattern(rows=256, cols=128, dp=3, bias=1, tile=32)
        rng = np.random.default_rng(0)
        x, weight, bias = _random_operands(rng, 4, 256, 128)
        out = tile_compact_linear(x, weight, bias, pattern, backend=backend)
        assert backend.calls.get("fused_gemm", 0) > 0
        forward_only = backend.predicted_ms
        assert forward_only > 0.0
        # The backward passes run the same fused class GEMMs and must be
        # charged too (roughly 3x the forward-only estimate overall).
        out.sum().backward()
        assert backend.predicted_ms > 2.5 * forward_only
        assert backend.stats()["predicted_ms"] > 0.0

    def test_fused_predict_registered_backend(self):
        backend = create_backend("fused-predict")
        assert isinstance(backend, FusedBackend)
        assert backend.predict_device is not None
        # Selectable through the config layer like any other backend.
        assert ExecutionConfig(backend="fused-predict").backend == "fused-predict"


class TestStackedEquivalence:
    """The stacked backend must agree with the reference numpy backend on
    every plan-driven op — forward and both backward ops — and be
    registered/selectable like any other backend."""

    def test_registered_and_selectable(self):
        assert "stacked" in available_backends()
        backend = create_backend("stacked")
        assert isinstance(backend, StackedBackend)
        assert isinstance(backend, FusedBackend)  # inherits the fused tiers
        assert ExecutionConfig(backend="stacked").backend == "stacked"

    @pytest.mark.parametrize("rows,cols,dp,bias_phase,tile",
                             TestFusedEquivalence.TILE_CASES)
    def test_tile_compact_linear_matches_numpy(self, rows, cols, dp,
                                               bias_phase, tile):
        pattern = TileDropoutPattern(rows=rows, cols=cols, dp=dp,
                                     bias=bias_phase, tile=tile)
        captured = []
        for backend in (NumpyBackend(), StackedBackend()):
            rng = np.random.default_rng(7)
            x, weight, bias = _random_operands(rng, 9, rows, cols)
            out = _run_and_collect(lambda: tile_compact_linear(
                x, weight, bias, pattern, scale_factor=1.3, backend=backend))
            captured.append((out.data.copy(), x.grad.copy(),
                             weight.grad.copy(), bias.grad.copy()))
        reference, stacked = captured
        for ref, got in zip(reference, stacked):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)
        np.testing.assert_array_equal(reference[2] == 0.0, stacked[2] == 0.0)

    RECURRENT_CASES = [
        # (hidden, num_gates, dp, bias, tile) — the gate replication feeds
        # the stacked families; dp=4 over an 8-wide tile grid produces
        # several equal-shape column classes (the batched-GEMM path proper).
        (96, 4, 3, 1, 32),
        (160, 4, 4, 0, 32),
        (256, 4, 7, 2, 32),
        (64, 2, 2, 1, 32),
    ]

    @pytest.mark.parametrize("hidden,gates,dp,bias_phase,tile", RECURRENT_CASES)
    def test_recurrent_compact_linear_matches_numpy(self, hidden, gates, dp,
                                                    bias_phase, tile):
        pattern = RecurrentTilePattern(hidden_size=hidden, num_gates=gates,
                                       dp=dp, bias=bias_phase, tile=tile)
        captured = []
        for backend in (NumpyBackend(), StackedBackend()):
            rng = np.random.default_rng(11)
            h = Tensor(rng.normal(size=(6, hidden)), requires_grad=True)
            weight = Tensor(rng.normal(size=(gates * hidden, hidden)) * 0.1,
                            requires_grad=True)
            out = _run_and_collect(lambda: recurrent_compact_linear(
                h, weight, pattern, scale_factor=1.2, backend=backend))
            captured.append((out.data.copy(), h.grad.copy(), weight.grad.copy()))
        reference, stacked = captured
        for ref, got in zip(reference, stacked):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)
        # Identical sparsity: dropped tiles get exactly zero grad either way.
        np.testing.assert_array_equal(reference[2] == 0.0, stacked[2] == 0.0)

    def test_stacked_families_engage_on_gate_aligned_plans(self):
        """The batched-GEMM tier must actually execute (not just fall back to
        the fused path) on a plan with several equal-shape column classes."""
        pattern = RecurrentTilePattern(hidden_size=160, num_gates=4, dp=4,
                                       bias=0, tile=32)
        backend = StackedBackend()
        rng = np.random.default_rng(0)
        h = Tensor(rng.normal(size=(4, 160)), requires_grad=True)
        weight = Tensor(rng.normal(size=(640, 160)), requires_grad=True)
        out = recurrent_compact_linear(h, weight, pattern, backend=backend)
        out.sum().backward()
        assert backend.calls.get("stacked_gemm", 0) > 0
        assert backend.calls.get("plan_stack") == 1

    def test_stacked_layout_cached_per_plan(self):
        backend = StackedBackend()
        pattern = TileDropoutPattern(rows=256, cols=128, dp=3, bias=1, tile=32)
        rng = np.random.default_rng(0)
        x, weight, bias = _random_operands(rng, 4, 256, 128)
        for _ in range(3):
            tile_compact_linear(x, weight, bias, pattern, backend=backend)
        assert backend.calls.get("plan_stack") == 1  # compiled once, reused
        assert backend.calls.get("tile_forward") == 3

    def test_stacked_with_workspace_matches_fresh_buffers(self):
        pattern = RecurrentTilePattern(hidden_size=96, num_gates=4, dp=3, bias=1)
        backend = StackedBackend()
        workspace = CompactWorkspace()
        rng = np.random.default_rng(2)
        h = Tensor(rng.normal(size=(5, 96)), requires_grad=True)
        weight = Tensor(rng.normal(size=(384, 96)), requires_grad=True)
        with_ws = _run_and_collect(lambda: recurrent_compact_linear(
            h, weight, pattern, workspace=workspace, backend=backend))
        grads_ws = (h.grad.copy(), weight.grad.copy())
        h.zero_grad(), weight.zero_grad()
        without = _run_and_collect(lambda: recurrent_compact_linear(
            h, weight, pattern, backend=backend))
        np.testing.assert_allclose(with_ws.data, without.data)
        np.testing.assert_allclose(grads_ws[0], h.grad)
        np.testing.assert_allclose(grads_ws[1], weight.grad)


class TestContextEquivalence:
    """The window-context op (`recurrent_context_linear`) routes its
    per-class GEMMs through the backend's ``context_*`` primitives; the
    stacked backend's batched tier must agree with the reference loop on the
    forward pass and both gradients (through the whole gather op, so the
    full-size weight gradient is compared too)."""

    def _run(self, backend, pattern, seed=13, scale=1.4):
        rng = np.random.default_rng(seed)
        hidden = pattern.hidden_size
        h = Tensor(rng.normal(size=(6, hidden)), requires_grad=True)
        weight = Tensor(rng.normal(size=(pattern.num_gates * hidden, hidden))
                        * 0.1, requires_grad=True)
        context = recurrent_compact_context(weight, pattern, backend=backend)
        out = _run_and_collect(lambda: recurrent_context_linear(
            h, context, scale_factor=scale, backend=backend))
        return out.data.copy(), h.grad.copy(), weight.grad.copy()

    @pytest.mark.parametrize("hidden,gates,dp,bias_phase,tile",
                             TestStackedEquivalence.RECURRENT_CASES)
    def test_context_linear_matches_numpy(self, hidden, gates, dp,
                                          bias_phase, tile):
        pattern = RecurrentTilePattern(hidden_size=hidden, num_gates=gates,
                                       dp=dp, bias=bias_phase, tile=tile)
        reference = self._run(NumpyBackend(), pattern)
        stacked = self._run(StackedBackend(), pattern)
        for ref, got in zip(reference, stacked):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)
        # Identical sparsity: dropped tiles get exactly zero grad either way.
        np.testing.assert_array_equal(reference[2] == 0.0, stacked[2] == 0.0)

    def test_batched_tier_engages_and_layout_is_cached(self):
        """Equal-shape context classes must execute through the stacked
        np.matmul tier (not the per-class fallback), with the index layout
        computed once per plan identity across repeated timesteps."""
        pattern = RecurrentTilePattern(hidden_size=160, num_gates=4, dp=4,
                                       bias=0, tile=32)
        backend = StackedBackend()
        rng = np.random.default_rng(3)
        weight = Tensor(rng.normal(size=(640, 160)), requires_grad=True)
        context = recurrent_compact_context(weight, pattern, backend=backend)
        for _ in range(3):  # three "timesteps" of one window
            h = Tensor(rng.normal(size=(4, 160)), requires_grad=True)
            out = recurrent_context_linear(h, context, backend=backend)
            out.sum().backward()
        assert backend.calls.get("stacked_gemm", 0) > 0
        assert backend.calls.get("context_stack") == 1
        assert backend.calls.get("context_forward") == 3

    def test_fused_backend_inherits_the_reference_loop(self):
        pattern = RecurrentTilePattern(hidden_size=96, num_gates=4, dp=3,
                                       bias=1, tile=32)
        reference = self._run(NumpyBackend(), pattern)
        fused = self._run(FusedBackend(), pattern)
        for ref, got in zip(reference, fused):
            np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)


class TestRuntimeIntegration:
    def test_bind_installs_backend_on_layers(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(32, 32),
                                        drop_rates=(0.5, 0.5),
                                        strategy="tile", seed=0))
        runtime = EngineRuntime(ExecutionConfig(backend="fused"))
        runtime.bind(model)
        installed = [module.backend for module in model.modules()
                     if getattr(module, "backend", None) is not None]
        assert installed, "no layer received the backend"
        assert all(backend is runtime.backend for backend in installed)
        assert isinstance(runtime.backend, FusedBackend)

    def test_stats_report_backend_calls(self):
        model = MLPClassifier(MLPConfig(hidden_sizes=(32, 32),
                                        drop_rates=(0.5, 0.5),
                                        strategy="row", seed=0))
        runtime = EngineRuntime(ExecutionConfig(backend="numpy", seed=0))
        runtime.bind(model)
        model.train()
        logits = model(Tensor(np.random.default_rng(0).normal(size=(4, 784))))
        logits.sum().backward()
        stats = runtime.stats()
        assert stats["backend"] == "numpy"
        assert sum(stats["backend_calls"].values()) > 0
        assert stats["backend_calls"].get("gemm", 0) > 0

    def test_per_op_counters_cover_all_primitives(self):
        backend = NumpyBackend()
        pattern = RowDropoutPattern(32, 2, 0)
        rng = np.random.default_rng(1)
        x, weight, bias = _random_operands(rng, 3, 32, 16)
        _run_and_collect(lambda: row_compact_linear(x, weight, bias, pattern,
                                                    backend=backend))
        for op in ("gemm", "gather", "alloc", "scatter"):
            assert backend.calls.get(op, 0) > 0, f"{op} never counted"

    def test_default_backend_is_shared_numpy(self):
        assert isinstance(default_backend(), NumpyBackend)
        assert default_backend() is default_backend()

    def test_per_model_stats_report_per_run_call_deltas(self):
        """A runtime shared across runs must not leak one run's backend
        calls into the next run's per-model record."""
        def make():
            return MLPClassifier(MLPConfig(hidden_sizes=(32, 32),
                                           drop_rates=(0.5, 0.5),
                                           strategy="row", seed=0))

        runtime = EngineRuntime(ExecutionConfig(backend="numpy", seed=0))
        batch = Tensor(np.random.default_rng(0).normal(size=(4, 784)))

        first = make()
        runtime.bind(first)
        first.train()
        first(batch).sum().backward()
        first_calls = runtime.stats(model=first)["backend_calls"]

        second = make()
        runtime.bind(second)
        second.train()
        second(batch).sum().backward()
        second_calls = runtime.stats(model=second)["backend_calls"]

        # One identical forward+backward each: the per-run records match
        # instead of the second one doubling up with the first run's work.
        assert second_calls == first_calls
        # The runtime-wide record still aggregates both runs.
        totals = runtime.stats()["backend_calls"]
        assert totals["gemm"] == 2 * first_calls["gemm"]
