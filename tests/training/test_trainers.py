"""Tests for the training harness (classifier + language model) and history records."""

import numpy as np
import pytest

from repro.models import LSTMConfig, LSTMLanguageModel, MLPClassifier, MLPConfig
from repro.training import (
    ClassifierTrainer,
    ClassifierTrainingConfig,
    LanguageModelTrainer,
    LanguageModelTrainingConfig,
    TrainingHistory,
    TrainingResult,
)


class TestTrainingHistory:
    def test_record_and_arrays(self):
        history = TrainingHistory()
        history.record(10, 2.0, 0.5, 100.0, 1.0)
        history.record(20, 1.5, 0.6, 200.0, 2.0)
        assert len(history) == 2
        arrays = history.as_arrays()
        assert np.allclose(arrays["eval_metric"], [0.5, 0.6])
        assert history.best_metric() == 0.6
        assert history.best_metric(higher_is_better=False) == 0.5

    def test_best_metric_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().best_metric()

    def test_training_result_speedup(self):
        result = TrainingResult(strategy="ROW", final_metric=0.9, best_metric=0.9,
                                iterations=100, simulated_time_ms=50.0,
                                simulated_baseline_time_ms=100.0, wall_time_s=1.0,
                                history=TrainingHistory())
        assert result.speedup == pytest.approx(2.0)
        assert result.time_saved_fraction == pytest.approx(0.5)


class TestClassifierTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClassifierTrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            ClassifierTrainingConfig(learning_rate=0)
        with pytest.raises(ValueError):
            ClassifierTrainingConfig(momentum=1.0)


class TestClassifierTrainer:
    def make_trainer(self, tiny_mnist, strategy="original", epochs=1):
        model = MLPClassifier(MLPConfig(hidden_sizes=(48, 48), drop_rates=(0.5, 0.5),
                                        strategy=strategy, seed=0))
        config = ClassifierTrainingConfig(batch_size=50, epochs=epochs,
                                          learning_rate=0.02, seed=0)
        return ClassifierTrainer(model, tiny_mnist, config)

    def test_training_improves_over_chance(self, tiny_mnist):
        trainer = self.make_trainer(tiny_mnist, epochs=3)
        result = trainer.train()
        assert result.final_metric > 0.3  # chance is 0.1
        assert result.iterations == 3 * (400 // 50)
        assert result.simulated_time_ms > 0
        assert result.strategy == "original"
        assert len(result.history) >= 3

    def test_max_iterations_cap(self, tiny_mnist):
        model = MLPClassifier(MLPConfig(hidden_sizes=(32, 32), drop_rates=(0.3, 0.3),
                                        strategy="row", seed=0))
        config = ClassifierTrainingConfig(batch_size=50, epochs=10, max_iterations=5)
        trainer = ClassifierTrainer(model, tiny_mnist, config)
        assert trainer.train().iterations == 5

    def test_row_strategy_speedup_recorded(self, tiny_mnist):
        trainer = self.make_trainer(tiny_mnist, strategy="row")
        result = trainer.train()
        # The 48-unit test network is too small to benefit (Table I trend:
        # speedup grows with layer width); the record itself must still differ
        # from the baseline and stay in a sane band.
        assert result.simulated_time_ms != result.simulated_baseline_time_ms
        assert 0.8 < result.speedup < 2.0

    def test_baseline_speedup_is_one(self, tiny_mnist):
        trainer = self.make_trainer(tiny_mnist, strategy="original")
        assert trainer.train().speedup == pytest.approx(1.0)

    def test_evaluate_in_unit_interval(self, tiny_mnist):
        trainer = self.make_trainer(tiny_mnist)
        assert 0.0 <= trainer.evaluate() <= 1.0

    def test_train_step_returns_finite_loss(self, tiny_mnist):
        trainer = self.make_trainer(tiny_mnist)
        loss = trainer.train_step(tiny_mnist.train_images[:50], tiny_mnist.train_labels[:50])
        assert np.isfinite(loss)

    def test_eval_every_records_intermediate_points(self, tiny_mnist):
        model = MLPClassifier(MLPConfig(hidden_sizes=(32, 32), drop_rates=(0.3, 0.3),
                                        strategy="original", seed=0))
        config = ClassifierTrainingConfig(batch_size=50, epochs=1, eval_every=2)
        result = ClassifierTrainer(model, tiny_mnist, config).train()
        assert len(result.history) >= 3


class TestLanguageModelTrainer:
    def make_trainer(self, tiny_corpus, strategy="original", epochs=1,
                     eval_metric="perplexity"):
        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=tiny_corpus.vocab_size, embed_size=16, hidden_size=24,
            num_layers=2, drop_rates=(0.3, 0.3), strategy=strategy, seed=0))
        config = LanguageModelTrainingConfig(batch_size=5, seq_len=12, epochs=epochs,
                                             learning_rate=1.0, eval_metric=eval_metric,
                                             seed=0)
        return LanguageModelTrainer(model, tiny_corpus, config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LanguageModelTrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            LanguageModelTrainingConfig(eval_metric="bogus")

    def test_training_beats_uniform_perplexity(self, tiny_corpus):
        trainer = self.make_trainer(tiny_corpus, epochs=2)
        result = trainer.train()
        assert result.final_metric < tiny_corpus.vocab_size  # better than uniform
        assert result.iterations > 0

    def test_accuracy_metric_mode(self, tiny_corpus):
        trainer = self.make_trainer(tiny_corpus, eval_metric="accuracy")
        result = trainer.train()
        assert 0.0 <= result.final_metric <= 1.0

    def test_row_strategy_speedup_recorded(self, tiny_corpus):
        trainer = self.make_trainer(tiny_corpus, strategy="row")
        assert trainer.train().speedup > 1.0

    def test_max_iterations_cap(self, tiny_corpus):
        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=tiny_corpus.vocab_size, embed_size=8, hidden_size=12,
            num_layers=2, drop_rates=(0.3, 0.3), strategy="original", seed=0))
        config = LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=10,
                                             max_iterations=3)
        assert LanguageModelTrainer(model, tiny_corpus, config).train().iterations == 3

    def test_evaluate_splits(self, tiny_corpus):
        trainer = self.make_trainer(tiny_corpus)
        assert trainer.evaluate("valid") > 0
        assert trainer.evaluate("test") > 0
