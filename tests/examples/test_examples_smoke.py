"""Smoke tests executing every example script at reduced scale.

The examples are the repo's public face (README points at them), so they must
keep working as the library evolves — PR 2 changed the trainer construction
path and the examples silently drifted.  Each test loads the script as a
module straight from ``examples/`` and runs its ``main`` with arguments small
enough for the tier-1 suite, asserting it completes and prints its headline
output.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    """Import ``examples/<name>.py`` as a throwaway module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_quickstart_smoke(capsys):
    module = load_example("quickstart")
    module.main(["--epochs", "1", "--train-samples", "256",
                 "--test-samples", "128", "--hidden", "48"])
    out = capsys.readouterr().out
    assert "[search]" in out
    assert "[training]" in out
    assert "[engine]" in out
    assert "speedup" in out


def test_quickstart_fused_backend(capsys):
    module = load_example("quickstart")
    module.main(["--epochs", "1", "--train-samples", "192",
                 "--test-samples", "96", "--hidden", "48", "--backend", "fused"])
    assert "backend=fused" in capsys.readouterr().out


def test_mlp_mnist_training_smoke(capsys):
    module = load_example("mlp_mnist_training")
    module.main(["--epochs", "1", "--train-samples", "256",
                 "--test-samples", "128", "--hidden", "48"])
    out = capsys.readouterr().out
    assert "strategy" in out
    assert "original" in out and "ROW" in out and "TILE" in out
    assert "Engine:" in out


def test_lstm_language_model_smoke(capsys):
    module = load_example("lstm_language_model")
    module.main(["--epochs", "1", "--hidden", "24", "--vocab", "80",
                 "--train-tokens", "1600", "--eval-tokens", "400"])
    out = capsys.readouterr().out
    assert "perplexity" in out
    assert "Modelled speedup" in out
    assert "Engine:" in out


def test_lstm_language_model_tiled_recurrent_smoke(capsys):
    module = load_example("lstm_language_model")
    module.main(["--epochs", "1", "--hidden", "32", "--vocab", "80",
                 "--train-tokens", "1600", "--eval-tokens", "400",
                 "--recurrent", "tiled", "--backend", "stacked"])
    out = capsys.readouterr().out
    assert "recurrent=tiled" in out
    assert "perplexity" in out


def test_distributed_training_smoke(capsys):
    module = load_example("distributed_training")
    module.main(["--epochs", "1", "--train-samples", "256",
                 "--test-samples", "128", "--hidden", "24", "--shards", "2"])
    out = capsys.readouterr().out
    assert "bit-identical" in out
    assert "shards=2" in out
    assert "sharded" in out and "single" in out


def test_gpu_cost_model_tour_smoke(capsys):
    module = load_example("gpu_cost_model_tour")
    module.main()
    assert capsys.readouterr().out.strip()


@pytest.mark.parametrize("name", ["quickstart", "mlp_mnist_training",
                                  "lstm_language_model", "gpu_cost_model_tour",
                                  "distributed_training"])
def test_example_exists_and_has_main(name):
    module = load_example(name)
    assert callable(getattr(module, "main", None))
