"""Tests for the unified ExecutionConfig / EngineRuntime stack.

Covers config validation, mode wiring into the pattern layers, the float32
execution path (end-to-end dtype retention), and the pool-wide determinism
contract: one ``ExecutionConfig.seed`` fixes the whole pooled schedule, so two
runs with the same seed produce bit-identical training histories.
"""

import numpy as np
import pytest

from repro.dropout.layers import ApproxDropConnectLinear, ApproxRandomDropoutLinear
from repro.dropout.sampler import PatternSchedule
from repro.execution import EngineRuntime, ExecutionConfig
from repro.models import LSTMConfig, LSTMLanguageModel, MLPClassifier, MLPConfig
from repro.tensor import Tensor
from repro.training import (
    ClassifierTrainer,
    ClassifierTrainingConfig,
    LanguageModelTrainer,
    LanguageModelTrainingConfig,
)


def make_mlp(strategy="row", hidden=32, rate=0.5, seed=0) -> MLPClassifier:
    return MLPClassifier(MLPConfig(hidden_sizes=(hidden, hidden),
                                   drop_rates=(rate, rate),
                                   strategy=strategy, seed=seed))


class TestExecutionConfig:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.mode == "pooled"
        assert config.dtype == "float64"
        assert config.backend == "numpy"
        assert config.np_dtype == np.dtype(np.float64)

    @pytest.mark.parametrize("kwargs", [
        {"mode": "bogus"},
        {"dtype": "float16"},
        {"backend": "cuda"},
        {"recurrent": "sparse"},
        {"loss_head": "hierarchical"},
        {"loss_head_rate": 1.0},
        {"loss_head_rate": -0.1},
        {"head_shortlist": -1},
        {"head_clusters": 0},
        {"pool_size": 0},
        {"workspace_slots": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionConfig(**kwargs)

    def test_loss_head_defaults_to_dense(self):
        assert ExecutionConfig().loss_head == "dense"
        assert "head=sampled" in ExecutionConfig(loss_head="sampled").describe()

    def test_describe_mentions_mode_and_dtype(self):
        text = ExecutionConfig(mode="compact", dtype="float32").describe()
        assert "compact" in text and "float32" in text

    def test_recurrent_defaults_to_dense(self):
        assert ExecutionConfig().recurrent == "dense"
        assert "recurrent=tiled" in ExecutionConfig(recurrent="tiled").describe()


class TestEngineRuntimeBind:
    def test_pooled_mode_builds_pooled_schedule(self):
        model = make_mlp("row")
        schedule = EngineRuntime(ExecutionConfig(mode="pooled")).bind(model)
        assert isinstance(schedule, PatternSchedule)
        assert schedule.pooled_sites()
        for module in model.modules():
            if isinstance(module, ApproxRandomDropoutLinear):
                assert module.execution_mode == "compact"
                assert module.use_workspace is True

    @pytest.mark.parametrize("mode,layer_mode,use_workspace", [
        ("masked", "masked", False),
        ("compact", "compact", False),
    ])
    def test_scalar_modes_configure_layers(self, mode, layer_mode, use_workspace):
        model = make_mlp("row")
        schedule = EngineRuntime(ExecutionConfig(mode=mode)).bind(model)
        assert not schedule.pooled_sites()
        for module in model.modules():
            if isinstance(module, ApproxRandomDropoutLinear):
                assert module.execution_mode == layer_mode
                assert module.use_workspace is use_workspace

    def test_masked_and_compact_modes_match_numerically(self):
        """Dense-masked and compact execution compute the same function."""
        x = Tensor(np.random.default_rng(0).normal(size=(4, 24)))
        layers = [ApproxDropConnectLinear(24, 24, 0.5, rng=np.random.default_rng(3))
                  for _ in range(2)]
        pattern = layers[0].sampler.sample_tile_pattern(24, 24, tile=layers[0].tile)
        for layer, mode in zip(layers, ("masked", "compact")):
            layer.execution_mode = mode
            layer.set_pattern(pattern)
        np.testing.assert_allclose(layers[0](x).data, layers[1](x).data,
                                   rtol=1e-10, atol=1e-12)

    def test_stats_structure(self):
        model = make_mlp("row")
        runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=5))
        schedule = runtime.bind(model)
        schedule.plan(4)
        for _ in range(4):
            schedule.step()
        stats = runtime.stats()
        assert stats["mode"] == "pooled"
        assert stats["runs"] == 1
        assert stats["steps"] == 4
        assert stats["pools"]["consumed"] == 4 * len(schedule.pooled_sites())
        assert {"hits", "misses", "currsize"} <= set(stats["tile_plan_cache"])
        assert {"num_buffers", "hits", "misses"} <= set(stats["workspace"])

    def test_per_model_stats_exclude_other_runs(self):
        """stats(model=...) restricts pool/step counters to that model's run,
        and earlier runs are archived (models released) at the next bind."""
        runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=5))
        per_run = {}
        models = {}
        for name, steps in (("first", 3), ("second", 5)):
            models[name] = make_mlp("row")
            schedule = runtime.bind(models[name])
            schedule.plan(steps)
            for _ in range(steps):
                schedule.step()
            per_run[name] = runtime.stats(model=models[name])
        assert per_run["first"]["steps"] == 3
        assert per_run["first"]["pools"]["consumed"] == 3 * 2  # 2 pooled sites
        assert per_run["second"]["steps"] == 5
        # Table-level totals still cover both runs after archival...
        assert runtime.stats()["steps"] == 8
        assert runtime.stats()["pools"]["consumed"] == 16
        # ...but the first model's pair was released at the second bind.
        assert runtime.stats(model=models["first"])["steps"] == 0
        assert len(runtime._bound) == 1


def make_lstm(strategy="row", hidden=16, vocab=60, seed=0) -> LSTMLanguageModel:
    return LSTMLanguageModel(LSTMConfig(
        vocab_size=vocab, embed_size=12, hidden_size=hidden, num_layers=2,
        drop_rates=(0.5, 0.5), strategy=strategy, seed=seed))


class TestRecurrentToggle:
    """ExecutionConfig.recurrent gates the LSTM recurrent DropConnect sites."""

    def _sites(self, model):
        from repro.dropout.layers import ApproxRecurrentDropConnect

        return [m for m in model.modules()
                if isinstance(m, ApproxRecurrentDropConnect)]

    def test_pattern_strategies_attach_gated_sites(self):
        model = make_lstm("row")
        sites = self._sites(model)
        assert len(sites) == 2  # one per LSTM layer
        assert all(not site.enabled for site in sites)  # inert by default
        assert not self._sites(make_lstm("original"))  # baseline stays dense

    def test_bind_tiled_enables_and_pools_the_sites(self):
        model = make_lstm("row")
        runtime = EngineRuntime(ExecutionConfig(mode="pooled",
                                                recurrent="tiled", seed=0))
        schedule = runtime.bind(model)
        sites = self._sites(model)
        assert all(site.enabled for site in sites)
        assert all(site.backend is runtime.backend for site in sites)
        # The enabled sites join the pooled schedule alongside the three
        # activation-dropout sites (input, inter-layer, output).
        pooled = schedule.pooled_sites()
        assert sum("RecurrentDropConnect" in name for name in pooled) == 2
        assert runtime.stats()["recurrent"] == "tiled"

    def test_bind_dense_disables_previously_enabled_sites(self):
        model = make_lstm("row")
        EngineRuntime(ExecutionConfig(recurrent="tiled", seed=0)).bind(model)
        assert all(site.enabled for site in self._sites(model))
        schedule = EngineRuntime(ExecutionConfig(recurrent="dense",
                                                 seed=0)).bind(model)
        assert all(not site.enabled for site in self._sites(model))
        assert not any("RecurrentDropConnect" in name
                       for name in schedule.pooled_sites())

    def test_tiled_training_step_runs_and_counts_backend_calls(self, tiny_corpus):
        model = make_lstm("row", vocab=tiny_corpus.vocab_size)
        runtime = EngineRuntime(ExecutionConfig(mode="pooled",
                                                recurrent="tiled", seed=0))
        trainer = LanguageModelTrainer(
            model, tiny_corpus,
            LanguageModelTrainingConfig(batch_size=5, seq_len=8, epochs=1,
                                        seed=0),
            runtime=runtime)
        inputs = tiny_corpus.train[:40].reshape(8, 5)
        targets = tiny_corpus.train[1:41].reshape(8, 5)
        loss, _ = trainer.train_step(inputs, targets, model.init_state(5))
        assert np.isfinite(loss)
        for param in model.parameters():
            assert param.grad is not None
        stats = runtime.stats(model=model)
        assert stats["recurrent"] == "tiled"
        assert stats["backend_calls"].get("gemm", 0) > 0

    def test_dense_vs_tiled_recurrent_equivalence_through_the_cell(self):
        """With the same pattern, masked and compact execution of the
        recurrent site compute the same function through a whole LSTM cell."""
        from repro.nn.recurrent import LSTMCell
        from repro.dropout.layers import ApproxRecurrentDropConnect

        rng = np.random.default_rng(0)
        cells = []
        for mode in ("masked", "compact"):
            site = ApproxRecurrentDropConnect(24, 0.5, enabled=True,
                                              rng=np.random.default_rng(1))
            site.execution_mode = mode
            cells.append(LSTMCell(10, 24, rng=np.random.default_rng(2),
                                  recurrent_dropout=site))
        pattern = cells[0].recurrent_dropout.sampler.sample_recurrent_pattern(
            24, 4, tile=cells[0].recurrent_dropout.tile)
        for cell in cells:
            cell.recurrent_dropout.set_pattern(pattern)
        x = Tensor(rng.normal(size=(3, 10)))
        state = (Tensor(rng.normal(size=(3, 24))), Tensor(rng.normal(size=(3, 24))))
        masked_out, _ = cells[0](x, state)
        compact_out, _ = cells[1](x, state)
        np.testing.assert_allclose(compact_out.data, masked_out.data,
                                   rtol=1e-10, atol=1e-12)


class TestLossHeadToggle:
    """ExecutionConfig.loss_head installs and wires the compact loss head."""

    def test_bind_dense_keeps_dense_head(self):
        from repro.heads import DenseSoftmaxHead

        model = make_lstm("row")
        EngineRuntime(ExecutionConfig(loss_head="dense", seed=0)).bind(model)
        assert isinstance(model.loss_head, DenseSoftmaxHead)

    def test_bind_sampled_installs_and_pools_the_head(self):
        from repro.heads import CompactSoftmaxHead

        model = make_lstm("row")
        runtime = EngineRuntime(ExecutionConfig(mode="pooled",
                                                loss_head="sampled",
                                                loss_head_rate=0.6, seed=0))
        schedule = runtime.bind(model)
        head = model.loss_head
        assert isinstance(head, CompactSoftmaxHead)
        assert head.vocab_size == model.config.vocab_size
        assert head.drop_rate == 0.6
        # Engine attributes applied like any pattern layer's...
        assert head.execution_mode == "compact"
        assert head.use_workspace is True
        assert head.backend is runtime.backend
        # ...and the head joins the pooled schedule as one more site.
        assert sum("CompactSoftmaxHead" in name
                   for name in schedule.pooled_sites()) == 1

    def test_bind_adaptive_installs_and_configures_the_head(self):
        from repro.heads import AdaptiveSoftmaxHead

        model = make_lstm("row")
        runtime = EngineRuntime(ExecutionConfig(mode="pooled",
                                                loss_head="adaptive",
                                                head_shortlist=20,
                                                head_clusters=3, seed=0))
        schedule = runtime.bind(model)
        head = model.loss_head
        assert isinstance(head, AdaptiveSoftmaxHead)
        assert head.vocab_size == model.config.vocab_size
        assert head.shortlist == 20
        # Engine attributes applied like any head's...
        assert head.execution_mode == "compact"
        assert head.use_workspace is True
        assert head.backend is runtime.backend
        # ...but the head draws no randomness, so it is NOT a pattern site.
        assert not any("AdaptiveSoftmaxHead" in name
                       for name in schedule.pooled_sites())

    def test_stats_report_adaptive_head_counters(self, tiny_corpus):
        model = make_lstm("row", vocab=tiny_corpus.vocab_size)
        runtime = EngineRuntime(ExecutionConfig(mode="pooled",
                                                loss_head="adaptive",
                                                head_shortlist=12,
                                                head_clusters=3, seed=0))
        trainer = LanguageModelTrainer(
            model, tiny_corpus,
            LanguageModelTrainingConfig(batch_size=5, seq_len=8, epochs=1,
                                        seed=0),
            runtime=runtime)
        inputs = tiny_corpus.train[:40].reshape(8, 5)
        targets = tiny_corpus.train[1:41].reshape(8, 5)
        loss, _ = trainer.train_step(inputs, targets, model.init_state(5))
        assert np.isfinite(loss)
        stats = runtime.stats(model=model)
        assert stats["loss_head"]["kind"] == "adaptive"
        assert stats["loss_head"]["shortlist"] == 12
        assert stats["loss_head"]["clusters"] == 3
        assert stats["loss_head"]["draws"] == 1
        assert stats["loss_head"]["cluster_activations"] >= 0
        assert stats["loss_head"]["kept_classes"] >= len(
            model.loss_head.head_classes)

    def test_bind_back_to_dense_removes_the_sampled_site(self):
        model = make_lstm("row")
        EngineRuntime(ExecutionConfig(loss_head="sampled", seed=0)).bind(model)
        schedule = EngineRuntime(ExecutionConfig(loss_head="dense",
                                                 seed=0)).bind(model)
        assert not any("CompactSoftmaxHead" in name
                       for name in schedule.pooled_sites())

    def test_stats_report_head_draws_and_kept_classes(self, tiny_corpus):
        model = make_lstm("row", vocab=tiny_corpus.vocab_size)
        runtime = EngineRuntime(ExecutionConfig(mode="pooled",
                                                loss_head="sampled", seed=0))
        trainer = LanguageModelTrainer(
            model, tiny_corpus,
            LanguageModelTrainingConfig(batch_size=5, seq_len=8, epochs=1,
                                        seed=0),
            runtime=runtime)
        inputs = tiny_corpus.train[:40].reshape(8, 5)
        targets = tiny_corpus.train[1:41].reshape(8, 5)
        loss, _ = trainer.train_step(inputs, targets, model.init_state(5))
        assert np.isfinite(loss)
        stats = runtime.stats(model=model)
        assert stats["loss_head"]["kind"] == "sampled"
        assert stats["loss_head"]["draws"] == 1
        assert 0 < stats["loss_head"]["kept_classes"] <= tiny_corpus.vocab_size

    def test_masked_mode_sampled_head_falls_back_to_dense_loss(self, tiny_corpus):
        """The conventional baseline computes nothing compactly: under
        mode="masked" the sampled head must not sample."""
        model = make_lstm("row", vocab=tiny_corpus.vocab_size)
        runtime = EngineRuntime(ExecutionConfig(mode="masked",
                                                loss_head="sampled", seed=0))
        trainer = LanguageModelTrainer(
            model, tiny_corpus,
            LanguageModelTrainingConfig(batch_size=5, seq_len=8, epochs=1,
                                        seed=0),
            runtime=runtime)
        inputs = tiny_corpus.train[:40].reshape(8, 5)
        targets = tiny_corpus.train[1:41].reshape(8, 5)
        trainer.train_step(inputs, targets, model.init_state(5))
        assert runtime.stats(model=model)["loss_head"]["draws"] == 0


class TestRebindResetsCounters:
    """Satellite: binding a second model with the same config must reseed the
    sites and keep per-run backend call counters clean (no stat bleed)."""

    def test_rebind_per_run_backend_calls_do_not_bleed(self, tiny_corpus):
        runtime = EngineRuntime(ExecutionConfig(mode="pooled",
                                                recurrent="tiled", seed=0))
        inputs = tiny_corpus.train[:40].reshape(8, 5)
        targets = tiny_corpus.train[1:41].reshape(8, 5)
        per_run = []
        for _ in range(2):
            model = make_lstm("row", vocab=tiny_corpus.vocab_size)
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=8, epochs=1,
                                            seed=0),
                runtime=runtime)
            trainer.train_step(inputs, targets, model.init_state(5))
            per_run.append(runtime.stats(model=model))
        # No bleed: each per-model record covers exactly its own run (the
        # exact counts differ between runs because each bind deliberately
        # draws a fresh pattern stream), so the two records partition the
        # runtime-wide totals instead of the second doubling up the first.
        assert per_run[0]["backend_calls"] and per_run[1]["backend_calls"]
        totals = runtime.stats()["backend_calls"]
        for op in totals:
            assert totals[op] == (per_run[0]["backend_calls"].get(op, 0)
                                  + per_run[1]["backend_calls"].get(op, 0))
        # Steps/pool counters are likewise per-run, not cumulative.
        assert per_run[1]["steps"] == per_run[0]["steps"] == 1
        assert (per_run[1]["pools"]["consumed"]
                == per_run[0]["pools"]["consumed"] == 5)  # 5 pooled sites

    def test_rebind_reseeds_sites_deterministically(self):
        """Two runtimes with the same config replay identical per-bind
        streams: bind k of runtime A draws the same pools as bind k of B."""
        def pool_fingerprint(runtime):
            model = make_lstm("row")
            schedule = runtime.bind(model)
            schedule.plan(16)
            draws = []
            for _ in range(16):
                draws.append([(type(p).__name__, p.dp, p.bias)
                              for p in schedule.step().values()])
            return draws

        first = EngineRuntime(ExecutionConfig(mode="pooled",
                                              recurrent="tiled", seed=42))
        second = EngineRuntime(ExecutionConfig(mode="pooled",
                                               recurrent="tiled", seed=42))
        assert pool_fingerprint(first) == pool_fingerprint(second)   # bind 1
        assert pool_fingerprint(first) == pool_fingerprint(second)   # bind 2


class TestFloat32Path:
    def test_parameters_cast_and_logits_stay_float32(self, tiny_mnist):
        model = make_mlp("row", hidden=32)
        runtime = EngineRuntime(ExecutionConfig(mode="pooled", dtype="float32"))
        trainer = ClassifierTrainer(
            model, tiny_mnist,
            ClassifierTrainingConfig(batch_size=50, epochs=1, seed=0),
            runtime=runtime)
        for param in model.parameters():
            assert param.data.dtype == np.float32
        loss = trainer.train_step(tiny_mnist.train_images[:50],
                                  tiny_mnist.train_labels[:50])
        assert np.isfinite(loss)
        logits = model(Tensor(tiny_mnist.train_images[:8], dtype=np.float32))
        assert logits.data.dtype == np.float32
        for param in model.parameters():
            assert param.data.dtype == np.float32
            if param.grad is not None:
                assert param.grad.dtype == np.float32

    def test_float32_training_learns(self, tiny_mnist):
        model = make_mlp("row", hidden=48, rate=0.3)
        runtime = EngineRuntime(ExecutionConfig(mode="pooled", dtype="float32"))
        trainer = ClassifierTrainer(
            model, tiny_mnist,
            ClassifierTrainingConfig(batch_size=50, epochs=8, learning_rate=0.05,
                                     seed=0),
            runtime=runtime)
        result = trainer.train()
        assert result.final_metric > 0.5  # chance is 0.1
        assert result.engine_stats["dtype"] == "float32"

    def test_float32_lstm_stays_float32(self, tiny_corpus):
        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=tiny_corpus.vocab_size, embed_size=16, hidden_size=24,
            num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
        runtime = EngineRuntime(ExecutionConfig(mode="pooled", dtype="float32"))
        trainer = LanguageModelTrainer(
            model, tiny_corpus,
            LanguageModelTrainingConfig(batch_size=5, seq_len=8, epochs=1, seed=0),
            runtime=runtime)
        state = model.init_state(5)
        assert state[0][0].data.dtype == np.float32
        inputs = tiny_corpus.train[:40].reshape(8, 5)
        targets = tiny_corpus.train[1:41].reshape(8, 5)
        loss, state = trainer.train_step(inputs, targets, state)
        assert np.isfinite(loss)
        assert state[0][0].data.dtype == np.float32
        for param in model.parameters():
            assert param.data.dtype == np.float32


class TestPoolWideDeterminism:
    """Satellite: one ExecutionConfig.seed fixes the whole pooled schedule."""

    def _train_mlp(self, dataset, exec_seed: int):
        model = make_mlp("row", hidden=32, seed=0)
        runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=exec_seed))
        trainer = ClassifierTrainer(
            model, dataset,
            ClassifierTrainingConfig(batch_size=50, epochs=2, seed=0),
            runtime=runtime)
        return trainer.train()

    def test_same_seed_bit_identical_histories(self, tiny_mnist):
        first = self._train_mlp(tiny_mnist, exec_seed=123)
        second = self._train_mlp(tiny_mnist, exec_seed=123)
        assert first.history.train_loss == second.history.train_loss
        assert first.history.eval_metric == second.history.eval_metric
        assert first.history.iterations == second.history.iterations

    def test_different_seeds_differ(self, tiny_mnist):
        first = self._train_mlp(tiny_mnist, exec_seed=123)
        second = self._train_mlp(tiny_mnist, exec_seed=321)
        assert first.history.train_loss != second.history.train_loss

    def test_same_seed_bit_identical_lstm_histories(self, tiny_corpus):
        def run():
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
                num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
            runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=9))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=1,
                                            seed=0),
                runtime=runtime)
            return trainer.train()

        first, second = run(), run()
        assert first.history.train_loss == second.history.train_loss
        assert first.history.eval_metric == second.history.eval_metric

    def test_same_seed_bit_identical_with_tiled_recurrent(self, tiny_corpus):
        """The determinism contract extends to the recurrent pattern sites:
        recurrent="tiled" adds two pooled sites and the single config seed
        still fixes the whole schedule bit-identically."""
        def run():
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
                num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
            runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=9,
                                                    recurrent="tiled"))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=1,
                                            seed=0),
                runtime=runtime)
            return trainer.train()

        first, second = run(), run()
        assert first.history.train_loss == second.history.train_loss
        assert first.history.eval_metric == second.history.eval_metric
        assert first.engine_stats["recurrent"] == "tiled"

    @pytest.mark.parametrize("backend", ["numpy", "fused", "stacked"])
    def test_same_seed_bit_identical_with_sampled_head(self, tiny_corpus,
                                                       backend):
        """Satellite: the determinism contract extends to the sampled loss
        head — the class-pattern stream comes from the same pool-wide
        SeedSequence, so two runs with one ExecutionConfig.seed produce
        bit-identical training histories under loss_head="sampled", on every
        registered backend."""
        def run():
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
                num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
            runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=9,
                                                    recurrent="tiled",
                                                    loss_head="sampled",
                                                    backend=backend))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=1,
                                            seed=0),
                runtime=runtime)
            return trainer.train()

        first, second = run(), run()
        assert first.history.train_loss == second.history.train_loss
        assert first.history.eval_metric == second.history.eval_metric
        assert first.engine_stats["loss_head"]["kind"] == "sampled"
        assert first.engine_stats["loss_head"]["draws"] > 0
        assert (first.engine_stats["loss_head"]["kept_classes"]
                == second.engine_stats["loss_head"]["kept_classes"])

    def test_adaptive_head_bit_identical_across_backends(self, tiny_corpus):
        """ISSUE 10 contract: the adaptive head draws no randomness, so a
        fixed ExecutionConfig.seed gives bit-identical training histories not
        just run-to-run but across every registered backend."""
        def run(backend):
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
                num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
            runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=9,
                                                    recurrent="tiled",
                                                    loss_head="adaptive",
                                                    head_shortlist=12,
                                                    head_clusters=3,
                                                    backend=backend))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=1,
                                            seed=0),
                runtime=runtime)
            return trainer.train()

        results = {backend: run(backend)
                   for backend in ("numpy", "fused", "stacked")}
        rerun = run("numpy")
        reference = results["numpy"]
        assert reference.history.train_loss == rerun.history.train_loss
        for backend, result in results.items():
            assert (result.history.train_loss
                    == reference.history.train_loss), backend
            assert (result.history.eval_metric
                    == reference.history.eval_metric), backend
        assert reference.engine_stats["loss_head"]["kind"] == "adaptive"
        assert reference.engine_stats["loss_head"]["draws"] > 0
        assert reference.engine_stats["loss_head"]["cluster_activations"] > 0

    def test_adaptive_and_dense_head_runs_differ(self, tiny_corpus):
        """Sanity: the factorized loss actually changes the training
        computation (gradients flow through the two-level softmax)."""
        def run(loss_head):
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
                num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
            runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=9,
                                                    loss_head=loss_head,
                                                    head_shortlist=12))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=1,
                                            seed=0),
                runtime=runtime)
            return trainer.train()

        assert (run("adaptive").history.train_loss
                != run("dense").history.train_loss)

    def test_sampled_and_dense_head_runs_differ(self, tiny_corpus):
        """Sanity: the loss-head toggle actually changes the training
        computation (while the eval path stays exact either way)."""
        def run(loss_head):
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
                num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
            runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=9,
                                                    loss_head=loss_head))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=1,
                                            seed=0),
                runtime=runtime)
            return trainer.train()

        assert (run("sampled").history.train_loss
                != run("dense").history.train_loss)

    def test_tiled_and_dense_recurrent_runs_differ(self, tiny_corpus):
        """Sanity: the toggle actually changes the computation."""
        def run(recurrent):
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
                num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
            runtime = EngineRuntime(ExecutionConfig(mode="pooled", seed=9,
                                                    recurrent=recurrent))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=5, seq_len=10, epochs=1,
                                            seed=0),
                runtime=runtime)
            return trainer.train()

        assert (run("tiled").history.train_loss
                != run("dense").history.train_loss)

    def test_compact_mode_is_also_seed_deterministic(self, tiny_mnist):
        def run():
            model = make_mlp("row", hidden=32, seed=0)
            runtime = EngineRuntime(ExecutionConfig(mode="compact", seed=11))
            trainer = ClassifierTrainer(
                model, tiny_mnist,
                ClassifierTrainingConfig(batch_size=50, epochs=1, seed=0),
                runtime=runtime)
            return trainer.train()

        assert run().history.train_loss == run().history.train_loss


class TestDtypePreservation:
    """The tensor stack must not silently upcast a float32 graph."""

    def test_op_chain_stays_float32(self):
        x = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True,
                   dtype=np.float32)
        w = Tensor(np.ones((2, 4), dtype=np.float32), requires_grad=True,
                   dtype=np.float32)
        out = ((x * 2.0 + 1.0).matmul(w.transpose()) / 3.0).relu().sum()
        assert out.data.dtype == np.float32
        out.backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32

    def test_scalar_constants_adopt_tensor_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), dtype=np.float32)
        assert (1.0 - x).data.dtype == np.float32
        assert (1.0 / (x + 1.0)).data.dtype == np.float32

    def test_float64_default_unchanged(self):
        x = Tensor([1.0, 2.0])
        assert x.data.dtype == np.float64
        assert (x * 2.0).data.dtype == np.float64
        assert x.detach().data.dtype == np.float64
