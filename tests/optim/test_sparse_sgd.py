"""Tests for the pattern-aware sparse optimizer (``repro.optim_sparse``).

The contract: :class:`SparseSGD` produces parameter trajectories **bit for
bit identical** to the dense :class:`~repro.nn.optim.SGD` across every
hyper-parameter corner (momentum, weight decay, gradient clipping) and every
execution backend, while its update arithmetic provably never writes rows or
columns outside the recorded dirty region.
"""

import numpy as np
import pytest

from repro.execution import EngineRuntime, ExecutionConfig
from repro.nn.module import Parameter
from repro.nn.optim import SGD, _grad_sq_norm
from repro.optim_sparse import SparseSGD
from repro.tensor import dirty

BACKENDS = ("numpy", "fused", "stacked")


def clone_params(params):
    return [Parameter(p.data.copy()) for p in params]


def drive_step(optimizer, params, grads, regions):
    """One zero_grad -> record -> step cycle with synthetic compact grads.

    Mimics what the engine's backward pass does: each gradient buffer is
    registered with the active tracker as zero-filled, then its dirty region
    is recorded.  The records are no-ops for the dense optimizer (it never
    activates a tracker), so the same driver runs both sides.
    """
    optimizer.zero_grad()
    for param, grad, region in zip(params, grads, regions):
        param.grad = grad
        if grad is None or region is None:
            continue
        kind, idx = region
        if kind == "full":
            dirty.record_full(grad)
            continue
        dirty.record_reset(grad)
        if kind == "rows":
            dirty.record_rows(grad, idx)
        elif kind == "cols":
            dirty.record_cols(grad, idx)
    optimizer.step()


class TestSyntheticBitIdentity:
    """Sparse vs dense trajectories on hand-built compact gradients."""

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    @pytest.mark.parametrize("grad_clip", [None, 0.75])
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_trajectories_bit_identical(self, rng, momentum, grad_clip,
                                        weight_decay):
        shapes = [(300, 8), (12, 40), (30, 8), (7,)]
        dense_params = [Parameter(rng.normal(size=s)) for s in shapes]
        sparse_params = clone_params(dense_params)
        kwargs = dict(lr=0.1, momentum=momentum, weight_decay=weight_decay,
                      grad_clip=grad_clip)
        dense = SGD(dense_params, **kwargs)
        sparse = SparseSGD(sparse_params, **kwargs)

        for step in range(6):
            grads, regions = [], []
            # Rows-dirty gradient whose row set changes every step (the
            # momentum corner exercises the stale-row decay path).
            rows = np.sort(rng.choice(shapes[0][0],
                                      size=int(rng.integers(1, 30)),
                                      replace=False))
            g0 = np.zeros(shapes[0])
            g0[rows] = rng.normal(size=(rows.size, shapes[0][1]))
            grads.append(g0)
            regions.append(("rows", rows))
            # Cols-dirty gradient.
            cols = np.sort(rng.choice(shapes[1][1],
                                      size=int(rng.integers(1, 10)),
                                      replace=False))
            g1 = np.zeros(shapes[1])
            g1[:, cols] = rng.normal(size=(shapes[1][0], cols.size))
            grads.append(g1)
            regions.append(("cols", cols))
            # Dense gradient with no recorded region (unknown -> fallback).
            grads.append(rng.normal(size=shapes[2]))
            regions.append(None)
            # A parameter whose gradient comes and goes across steps.
            if step % 2:
                grads.append(rng.normal(size=shapes[3]))
                regions.append(("full", None))
            else:
                grads.append(None)
                regions.append(None)

            drive_step(dense, dense_params,
                       [None if g is None else g.copy() for g in grads],
                       regions)
            drive_step(sparse, sparse_params, grads, regions)
            for d, s in zip(dense_params, sparse_params):
                assert np.array_equal(d.data, s.data)

        assert sparse.step_count == dense.step_count == 6
        if not weight_decay:
            assert sparse.sparse_updates > 0

    def test_empty_region_skips_the_update(self, rng):
        param = Parameter(rng.normal(size=(16, 4)))
        before = param.data.copy()
        optimizer = SparseSGD([param], lr=0.5, momentum=0.9)
        optimizer.zero_grad()
        grad = np.zeros((16, 4))
        dirty.record_reset(grad)  # allocated zero-filled, never scattered to
        param.grad = grad
        optimizer.step()
        assert np.array_equal(param.data, before)
        assert optimizer.skipped_updates == 1
        assert optimizer.dense_fallbacks == 0

    def test_unknown_region_falls_back_dense(self, rng):
        dense_param = Parameter(rng.normal(size=(16, 4)))
        sparse_param = Parameter(dense_param.data.copy())
        grad = rng.normal(size=(16, 4))
        dense = SGD([dense_param], lr=0.1)
        sparse = SparseSGD([sparse_param], lr=0.1)
        drive_step(dense, [dense_param], [grad.copy()], [None])
        drive_step(sparse, [sparse_param], [grad], [None])
        assert np.array_equal(dense_param.data, sparse_param.data)
        assert sparse.dense_fallbacks == 1

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_dense_cutover_stays_bit_identical_and_notifies_sparsely(
            self, rng, momentum):
        # Above DENSE_CUTOVER the arithmetic runs dense (contiguous beats
        # fancy indexing) but the result and the observer notification must
        # be exactly what the sparse path would produce.
        dense_param = Parameter(rng.normal(size=(40, 6)))
        sparse_param = Parameter(dense_param.data.copy())
        dense = SGD([dense_param], lr=0.1, momentum=momentum)
        sparse = SparseSGD([sparse_param], lr=0.1, momentum=momentum)
        notified = []
        sparse.tracker.set_observer("probe",
                                    lambda a, kind, idx: notified.append((kind, idx)))
        rows = np.arange(30)  # 75% of the axis: over the cutover
        for _ in range(2):
            grad = np.zeros((40, 6))
            grad[rows] = rng.normal(size=(rows.size, 6))
            drive_step(dense, [dense_param], [grad.copy()], [("rows", rows)])
            drive_step(sparse, [sparse_param], [grad], [("rows", rows)])
            assert np.array_equal(dense_param.data, sparse_param.data)
        assert sparse.sparse_updates == 2 and sparse.dense_fallbacks == 0
        for kind, idx in notified:
            assert kind == "rows" and np.array_equal(np.sort(idx), rows)

    def test_clip_skips_clean_chunks_bit_exactly(self, rng):
        grad = np.zeros((1024, 3))
        rows = np.array([5, 300, 700])
        grad[rows] = rng.normal(size=(rows.size, 3))
        optimizer = SparseSGD([Parameter(rng.normal(size=(1024, 3)))],
                              lr=0.1, grad_clip=0.5)
        # 1024 rows = 4 fixed 256-row chunks; the dirty rows touch 3 of them.
        assert optimizer._row_region_sq_norm(grad, rows) == _grad_sq_norm(grad)
        assert optimizer.skipped_norm_chunks == 1


class _WriteLog(np.ndarray):
    """ndarray recording every ``__setitem__`` key / whole-array ``-=``.

    Views and fancy-index copies deliberately get ``writes = None`` (via
    ``__array_finalize__``) so only writes on the logged array itself count.
    """

    def __array_finalize__(self, obj):
        self.writes = None

    def __setitem__(self, key, value):
        if self.writes is not None:
            self.writes.append(("set", key))
        super().__setitem__(key, value)

    def __isub__(self, other):
        if self.writes is not None:
            self.writes.append(("isub", None))
        return super().__isub__(other)


class TestDirtySetIsRespected:
    def test_untouched_rows_are_literally_never_written(self, rng):
        base = rng.normal(size=(64, 5))
        param = Parameter(base.copy())
        logged = param.data.view(_WriteLog)
        logged.writes = []
        param.data = logged
        optimizer = SparseSGD([param], lr=0.1, momentum=0.9)

        touched = set()
        for rows in (np.array([3, 7, 40]), np.array([7, 12])):
            optimizer.zero_grad()
            grad = np.zeros((64, 5))
            dirty.record_reset(grad)
            grad[rows] = rng.normal(size=(rows.size, 5))
            dirty.record_rows(grad, rows)
            param.grad = grad
            optimizer.step()
            touched.update(int(r) for r in rows)

        written = set()
        for op, key in logged.writes:
            # A whole-array in-place update would mean the sparse path fell
            # back dense despite a recorded row region.
            assert op == "set", "dense write on a sparse-region step"
            written.update(int(i) for i in np.atleast_1d(np.asarray(key)).ravel())
        assert written
        assert written <= touched
        untouched = sorted(set(range(64)) - touched)
        assert np.array_equal(np.asarray(param.data)[untouched],
                              base[untouched])


class TestRuntimeWiring:
    def test_execution_config_validates_and_describes_optimizer(self):
        with pytest.raises(ValueError, match="optimizer"):
            ExecutionConfig(optimizer="adam")
        assert ExecutionConfig().optimizer == "dense"
        assert "opt=sparse" in ExecutionConfig(optimizer="sparse").describe()

    def test_make_sgd_returns_the_configured_flavour(self):
        param = Parameter(np.ones(3))
        runtime = EngineRuntime(ExecutionConfig(optimizer="sparse"))
        optimizer = runtime.make_sgd([param], lr=0.1)
        assert isinstance(optimizer, SparseSGD)
        assert optimizer.tracker is runtime.dirty_tracker
        dense_runtime = EngineRuntime(ExecutionConfig())
        dense_optimizer = dense_runtime.make_sgd([param], lr=0.1)
        assert type(dense_optimizer) is SGD

    def test_stats_report_optimizer_block(self):
        runtime = EngineRuntime(ExecutionConfig(optimizer="sparse"))
        optimizer = runtime.make_sgd([Parameter(np.ones((4, 4)))], lr=0.1)
        optimizer.zero_grad()
        optimizer.step()
        block = runtime.stats()["optimizer"]
        assert block["kind"] == "sparse"
        assert block["steps"] == 1
        assert {"sparse_updates", "dense_fallbacks", "skipped_updates",
                "skipped_norm_chunks", "dirty_fraction", "tracker"} <= set(block)


class TestTrainerBitIdentity:
    """End-to-end: both trainers, every backend, sparse == dense bit for bit."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mlp_classifier_histories_identical(self, tiny_mnist, backend):
        from repro.models.mlp import MLPClassifier, MLPConfig
        from repro.training.trainer import (
            ClassifierTrainer,
            ClassifierTrainingConfig,
        )

        def run(optimizer):
            model = MLPClassifier(MLPConfig(
                input_size=tiny_mnist.num_features, hidden_sizes=(48, 48),
                num_classes=tiny_mnist.num_classes, drop_rates=(0.5, 0.5),
                strategy="row", seed=3))
            runtime = EngineRuntime(ExecutionConfig(
                backend=backend, optimizer=optimizer, seed=3))
            trainer = ClassifierTrainer(
                model, tiny_mnist,
                ClassifierTrainingConfig(batch_size=32, epochs=1,
                                         max_iterations=6, seed=3),
                runtime=runtime)
            trainer.train()
            return [p.data.copy() for p in model.parameters()], trainer

        dense_params, _ = run("dense")
        sparse_params, trainer = run("sparse")
        for d, s in zip(dense_params, sparse_params):
            assert np.array_equal(d, s)
        stats = trainer.runtime.stats()["optimizer"]
        assert stats["kind"] == "sparse" and stats["steps"] == 6

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lstm_lm_histories_identical(self, tiny_corpus, backend):
        from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel
        from repro.training.lm_trainer import (
            LanguageModelTrainer,
            LanguageModelTrainingConfig,
        )

        def run(optimizer):
            model = LSTMLanguageModel(LSTMConfig(
                vocab_size=60, embed_size=32, hidden_size=32, num_layers=2,
                drop_rates=(0.5, 0.5), strategy="row", seed=5))
            runtime = EngineRuntime(ExecutionConfig(
                backend=backend, recurrent="tiled", loss_head="sampled",
                optimizer=optimizer, seed=5))
            trainer = LanguageModelTrainer(
                model, tiny_corpus,
                LanguageModelTrainingConfig(batch_size=8, seq_len=10,
                                            epochs=1, max_iterations=4,
                                            seed=5),
                runtime=runtime)
            trainer.train()
            return [p.data.copy() for p in model.parameters()]

        dense_params = run("dense")
        sparse_params = run("sparse")
        for d, s in zip(dense_params, sparse_params):
            assert np.array_equal(d, s)


class TestRecurrentContextCache:
    def _model_and_runtime(self, optimizer):
        from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel

        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=60, embed_size=32, hidden_size=32, num_layers=1,
            drop_rates=(0.5,), strategy="row", seed=5))
        runtime = EngineRuntime(ExecutionConfig(
            recurrent="tiled", loss_head="sampled", optimizer=optimizer,
            seed=5))
        runtime.bind(model)
        return model, runtime

    def test_cache_enabled_only_under_sparse_and_tiled(self):
        model, _ = self._model_and_runtime("sparse")
        site = model.lstm.cells[0].recurrent_dropout
        assert site.context_cache_enabled
        dense_model, _ = self._model_and_runtime("dense")
        assert not dense_model.lstm.cells[0].recurrent_dropout.context_cache_enabled

    def test_cache_reuses_clean_classes_across_windows(self, tiny_corpus):
        from repro.training.lm_trainer import (
            LanguageModelTrainer,
            LanguageModelTrainingConfig,
        )
        from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel

        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=60, embed_size=32, hidden_size=32, num_layers=1,
            drop_rates=(0.5,), strategy="row", seed=5))
        runtime = EngineRuntime(ExecutionConfig(
            recurrent="tiled", loss_head="sampled", optimizer="sparse",
            seed=5))
        trainer = LanguageModelTrainer(
            model, tiny_corpus,
            LanguageModelTrainingConfig(batch_size=8, seq_len=10, epochs=1,
                                        max_iterations=4, seed=5),
            runtime=runtime)
        trainer.train()
        site = model.lstm.cells[0].recurrent_dropout
        # The cache must have been consulted; whether a given window refreshes
        # or reuses depends on which weight_h rows the updates dirtied, but
        # across several windows both counters engage.
        assert site.context_classes_refreshed + site.context_classes_reused > 0
