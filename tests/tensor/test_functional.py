"""Unit tests for repro.tensor.functional composite operations."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, functional as F


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        probs = F.softmax(x)
        assert np.allclose(probs.data.sum(axis=1), 1.0)
        assert np.all(probs.data >= 0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        p1 = F.softmax(Tensor(x)).data
        p2 = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(p1, p2)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_softmax_numerical_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1001.0, 999.0]]))
        probs = F.softmax(x).data
        assert np.all(np.isfinite(probs))
        assert np.allclose(probs.sum(), 1.0)

    def test_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        weights = Tensor(rng.normal(size=(3, 5)))
        check_gradients(lambda: (F.softmax(x) * weights).sum(), [x])


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(Tensor(logits), targets)
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert np.allclose(float(loss.data), expected)

    def test_reductions(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)))
        targets = rng.integers(0, 3, size=5)
        total = F.cross_entropy(logits, targets, reduction="sum")
        mean = F.cross_entropy(logits, targets, reduction="mean")
        per_sample = F.cross_entropy(logits, targets, reduction="none")
        assert np.allclose(float(total.data), float(mean.data) * 5)
        assert per_sample.shape == (5,)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 4), -20.0)
        logits[np.arange(3), [0, 1, 2]] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1, 2]))
        assert float(loss.data) < 1e-6

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1]), reduction="bogus")

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        targets = rng.integers(0, 5, size=4)
        check_gradients(lambda: F.cross_entropy(logits, targets), [logits])

    def test_nll_loss_consistent_with_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        targets = rng.integers(0, 5, size=4)
        ce = F.cross_entropy(logits, targets)
        nll = F.nll_loss(F.log_softmax(logits), targets)
        assert np.allclose(float(ce.data), float(nll.data))

    def test_mse_loss(self):
        pred = Tensor([[1.0, 2.0]])
        target = np.array([[0.0, 4.0]])
        assert np.allclose(float(F.mse_loss(pred, target).data), (1 + 4) / 2)


class TestConcatStack:
    def test_concat_values_and_grads(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = F.concat([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda: (F.concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2, 5)))
        assert F.concat([a, b], axis=1).shape == (2, 8)

    def test_stack(self, rng):
        tensors = [Tensor(rng.normal(size=(2, 3)), requires_grad=True) for _ in range(4)]
        out = F.stack(tensors, axis=0)
        assert out.shape == (4, 2, 3)
        check_gradients(lambda: (F.stack(tensors, axis=0) * 2).sum(), tensors)


class TestEmbeddingAndMasks:
    def test_embedding_lookup_values(self, rng):
        weight = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        indices = np.array([[1, 2], [3, 1]])
        out = F.embedding_lookup(weight, indices)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], weight.data[1])

    def test_embedding_gradient_accumulates_repeats(self, rng):
        weight = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        indices = np.array([2, 2, 2])
        F.embedding_lookup(weight, indices).sum().backward()
        assert np.allclose(weight.grad[2], 3.0)
        assert np.allclose(weight.grad[0], 0.0)

    def test_embedding_gradient_matches_numerical(self, rng):
        weight = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        indices = np.array([[0, 2, 2], [5, 0, 1]])
        check_gradients(
            lambda: (F.embedding_lookup(weight, indices) ** 2).sum(), [weight])

    def test_embedding_negative_index_aliases_accumulate(self, rng):
        weight = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        F.embedding_lookup(weight, np.array([-5, 1])).sum().backward()
        assert np.allclose(weight.grad[1], 2.0)  # -5 and 1 alias row 1

    def test_embedding_empty_lookup_backward_is_zero(self, rng):
        weight = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        out = F.embedding_lookup(weight, np.zeros((0,), dtype=int))
        assert out.shape == (0, 3)
        out.sum().backward()
        assert np.all(weight.grad == 0.0)

    def test_apply_mask(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        mask = np.array([1.0, 0.0, 1.0, 0.0])
        out = F.apply_mask(x, mask)
        assert np.allclose(out.data[:, 1], 0.0)
        out.sum().backward()
        assert np.allclose(x.grad[:, 1], 0.0)
        assert np.allclose(x.grad[:, 0], 1.0)

    def test_linear_matches_manual(self, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        w = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=2))
        assert np.allclose(F.linear(x, w, b).data, x.data @ w.data.T + b.data)


class TestRowColumnScatter:
    def test_rows_select_and_scatter_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        idx = np.array([0, 2, 4])
        compact = F.rows_select(x, idx)
        full = F.rows_scatter(compact, idx, 6)
        assert np.allclose(full.data[idx], x.data[idx])
        assert np.allclose(full.data[[1, 3, 5]], 0.0)

    def test_rows_scatter_gradcheck(self, rng):
        compact = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        idx = np.array([1, 3, 5])
        check_gradients(lambda: (F.rows_scatter(compact, idx, 7) ** 2).sum(), [compact])

    def test_cols_select_and_scatter(self, rng):
        x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        idx = np.array([0, 3, 6])
        compact = F.cols_select(x, idx)
        assert compact.shape == (4, 3)
        full = F.cols_scatter(compact, idx, 8)
        assert np.allclose(full.data[:, idx], x.data[:, idx])
        assert np.allclose(full.data[:, 1], 0.0)

    def test_cols_select_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        idx = np.array([1, 4])
        check_gradients(lambda: (F.cols_select(x, idx) ** 2).sum(), [x])
