"""Unit tests for the core autodiff Tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, no_grad, is_grad_enabled


class TestConstruction:
    def test_basic_properties(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert not t.requires_grad

    def test_zeros_and_ones(self):
        assert np.all(Tensor.zeros((3, 2)).data == 0)
        assert np.all(Tensor.ones((2, 5)).data == 1)

    def test_randn_shape_and_scale(self):
        rng = np.random.default_rng(0)
        t = Tensor.randn(200, 50, rng=rng, scale=0.1)
        assert t.shape == (200, 50)
        assert abs(float(t.data.std()) - 0.1) < 0.02

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len(self):
        assert len(Tensor([[1.0], [2.0], [3.0]])) == 3


class TestArithmeticForward:
    def test_add_sub_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((1 + a).data, [2, 3])
        assert np.allclose((a * 3).data, [3, 6])
        assert np.allclose((3 - a).data, [2, 1])
        assert np.allclose((2 / a).data, [2, 1])

    def test_neg_and_pow(self):
        a = Tensor([1.0, -2.0])
        assert np.allclose((-a).data, [-1, 2])
        assert np.allclose((a ** 2).data, [1, 4])

    def test_broadcasting_forward(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.arange(4.0))
        assert (a + b).shape == (3, 4)
        assert np.allclose((a + b).data[0], [1, 2, 3, 4])

    def test_comparison_returns_bool_array(self):
        a = Tensor([1.0, 5.0])
        assert (a > 2).tolist() == [False, True]
        assert (a <= 1).tolist() == [True, False]

    def test_matmul_forward(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestReductionsAndShaping:
    def test_sum_axes(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose(t.sum().data, 66.0)
        assert np.allclose(t.sum(axis=0).data, t.data.sum(axis=0))
        assert t.sum(axis=1, keepdims=True).shape == (3, 1)

    def test_mean(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose(t.mean().data, 5.5)
        assert np.allclose(t.mean(axis=0).data, t.data.mean(axis=0))

    def test_max(self):
        t = Tensor([[1.0, 7.0], [3.0, 2.0]])
        assert np.allclose(t.max().data, 7.0)
        assert np.allclose(t.max(axis=1).data, [7.0, 3.0])

    def test_reshape_and_transpose(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.reshape(3, 2).shape == (3, 2)
        assert t.reshape(-1).shape == (6,)
        assert t.T.shape == (3, 2)
        assert np.allclose(t.T.data, t.data.T)

    def test_getitem(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose(t[1].data, t.data[1])
        assert np.allclose(t[:, 2].data, t.data[:, 2])

    def test_clip(self):
        t = Tensor([-2.0, 0.5, 3.0])
        assert np.allclose(t.clip(0.0, 1.0).data, [0.0, 0.5, 1.0])


class TestBackward:
    def test_scalar_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_non_scalar_backward_needs_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(RuntimeError):
            out.backward()

    def test_simple_chain(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * x + 2 * x).sum()
        y.backward()
        assert np.allclose(x.grad, [8.0])  # 2x + 2

    def test_gradient_accumulates_over_multiple_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3 + x * 4).sum()
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_broadcast_gradients_unbroadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        ((a + b) * 2).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 6.0)  # summed over the 3 broadcast rows

    def test_deep_graph_does_not_hit_recursion_limit(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor([1.0], requires_grad=True)
            y = x * 2
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_is_per_thread(self):
        """Overlapping no_grad() blocks on different threads never interact.

        With one shared flag, the later entrant saves False and restores it
        last, leaving gradients disabled process-wide — the race the serving
        path's concurrent eval threads used to hit.
        """
        import threading

        entered = threading.Barrier(3)
        leave = threading.Event()
        inside = []

        def worker():
            with no_grad():
                entered.wait(timeout=10)
                inside.append(is_grad_enabled())
                leave.wait(timeout=10)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=10)
        # Both workers sit inside no_grad(); this thread is unaffected.
        assert is_grad_enabled()
        leave.set()
        for thread in threads:
            thread.join()
        assert inside == [False, False]
        # And their exits restored nothing on this thread either.
        assert is_grad_enabled()
        x = Tensor([1.0], requires_grad=True)
        assert (x * 2).requires_grad


@pytest.mark.parametrize("op_name", [
    "add", "sub", "mul", "div", "matmul", "pow", "exp", "log", "sqrt",
    "relu", "sigmoid", "tanh", "sum", "mean", "max", "reshape", "transpose",
    "getitem", "clip",
])
def test_gradcheck_each_op(op_name, rng):
    """Every differentiable op matches central finite differences."""
    a = Tensor(rng.uniform(0.2, 1.5, size=(3, 4)), requires_grad=True)
    b = Tensor(rng.uniform(0.2, 1.5, size=(3, 4)), requires_grad=True)
    c = Tensor(rng.uniform(0.2, 1.5, size=(4, 2)), requires_grad=True)

    ops = {
        "add": lambda: (a + b).sum(),
        "sub": lambda: (a - b).sum(),
        "mul": lambda: (a * b).sum(),
        "div": lambda: (a / b).sum(),
        "matmul": lambda: (a @ c).sum(),
        "pow": lambda: (a ** 3).sum(),
        "exp": lambda: a.exp().sum(),
        "log": lambda: a.log().sum(),
        "sqrt": lambda: a.sqrt().sum(),
        "relu": lambda: (a - 0.8).relu().sum(),
        "sigmoid": lambda: a.sigmoid().sum(),
        "tanh": lambda: a.tanh().sum(),
        "sum": lambda: a.sum(axis=1).sum(),
        "mean": lambda: a.mean(axis=0).sum(),
        "max": lambda: a.max(axis=1).sum(),
        "reshape": lambda: (a.reshape(4, 3) * 2).sum(),
        "transpose": lambda: (a.transpose() @ b).sum(),
        "getitem": lambda: (a[1:, :2] * 3).sum(),
        "clip": lambda: a.clip(0.4, 1.2).sum(),
    }
    params = {"matmul": [a, c], "transpose": [a, b]}.get(op_name, [a, b])
    check_gradients(ops[op_name], params, rtol=1e-4, atol=1e-6)
