"""Tests for the loss-head subsystem (`repro.heads`).

Covers the head registry, the dense head's exact equivalence with the classic
logits-then-cross-entropy path, the sampled head's estimator properties
(targets always kept, dp=1 exactness, tolerance against the dense loss,
counters), the gated fallbacks (eval / masked execution), and the LSTM
integration — including the ISSUE 5 regression contract: the sampled head's
training loss matches the dense head within tolerance while dense evaluation
(perplexity) stays exact.
"""

import numpy as np
import pytest

from repro.dropout.patterns import RowDropoutPattern, row_pattern
from repro.heads import (
    LOSS_HEAD_KINDS,
    CompactSoftmaxHead,
    DenseSoftmaxHead,
    build_loss_head,
    sampled_class_set,
    sampled_softmax_loss,
)
from repro.tensor import Tensor, check_gradients, functional as F


def make_head_inputs(rng, batch=6, hidden=8, vocab=40):
    features = Tensor(rng.normal(size=(batch, hidden)), requires_grad=True)
    weight = Tensor(rng.normal(size=(vocab, hidden)) * 0.1, requires_grad=True)
    bias = Tensor(rng.normal(size=vocab) * 0.1, requires_grad=True)
    targets = rng.integers(0, vocab, size=batch)
    return features, weight, bias, targets


class TestBuildLossHead:
    def test_registry_round_trip(self):
        assert isinstance(build_loss_head("dense"), DenseSoftmaxHead)
        head = build_loss_head("sampled", vocab_size=100, rate=0.6)
        assert isinstance(head, CompactSoftmaxHead)
        assert head.vocab_size == 100
        assert head.drop_rate == 0.6

    def test_unknown_kind_fails_with_available_list(self):
        with pytest.raises(ValueError, match="dense"):
            build_loss_head("bogus")

    def test_sampled_requires_vocab_size(self):
        with pytest.raises(ValueError, match="vocab_size"):
            build_loss_head("sampled")

    def test_kinds_cover_all_heads(self):
        assert set(LOSS_HEAD_KINDS) == {"dense", "sampled", "adaptive"}


class TestDenseSoftmaxHead:
    def test_loss_equals_functional_cross_entropy(self, rng):
        features, weight, bias, targets = make_head_inputs(rng)
        head = DenseSoftmaxHead()
        head.train()
        expected = F.cross_entropy(F.linear(features, weight, bias), targets)
        np.testing.assert_allclose(
            head.loss(features, weight, bias, targets).data, expected.data)

    def test_logits_compact_against_input_pattern_match_dense(self, rng):
        """The consumer-GEMM compaction refactored out of the model is
        numerically identical to the dense projection of masked features."""
        features, weight, bias, targets = make_head_inputs(rng, hidden=12)
        pattern = RowDropoutPattern(12, dp=3, bias=1)
        masked = Tensor(features.data * pattern.mask())
        head = DenseSoftmaxHead()
        head.train()
        head.execution_mode = "compact"
        compact = head.logits(masked, weight, bias, input_pattern=pattern)
        dense = F.linear(masked, weight, bias)
        np.testing.assert_allclose(compact.data, dense.data,
                                   rtol=1e-10, atol=1e-12)


class TestSampledClassSet:
    def test_targets_always_kept(self, rng):
        pattern = RowDropoutPattern(50, dp=5, bias=2)
        targets = rng.integers(0, 50, size=12)
        classes, log_weights, positions = sampled_class_set(pattern, targets)
        assert np.all(np.isin(targets, classes))
        np.testing.assert_array_equal(classes[positions], targets)
        # Target classes carry unit weight; kept non-targets carry log(dp).
        assert np.all(log_weights[positions] == 0.0)
        non_target = np.isin(classes, targets, invert=True)
        np.testing.assert_allclose(log_weights[non_target], np.log(5))

    def test_dp_one_keeps_everything_with_zero_weights(self):
        pattern = RowDropoutPattern(20, dp=1, bias=0)
        classes, log_weights, _ = sampled_class_set(pattern, np.array([3, 7]))
        np.testing.assert_array_equal(classes, np.arange(20))
        assert not np.any(log_weights)


class TestSampledSoftmaxLoss:
    def test_dp_one_equals_dense_cross_entropy(self, rng):
        features, weight, bias, targets = make_head_inputs(rng)
        pattern = RowDropoutPattern(40, dp=1, bias=0)
        sampled = sampled_softmax_loss(features, weight, bias, targets, pattern)
        dense = F.cross_entropy(F.linear(features, weight, bias), targets)
        np.testing.assert_allclose(sampled.data, dense.data,
                                   rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("dp,bias", [(2, 0), (3, 2), (5, 4)])
    def test_estimator_tracks_dense_loss(self, rng, dp, bias):
        """The importance-weighted normaliser is a consistent estimate of the
        full softmax normaliser — at head scales the loss stays within a few
        percent of the exact dense cross-entropy."""
        features = Tensor(rng.normal(size=(16, 24)), requires_grad=True)
        weight = Tensor(rng.normal(size=(512, 24)) * 0.05, requires_grad=True)
        targets = rng.integers(0, 512, size=16)
        pattern = RowDropoutPattern(512, dp=dp, bias=bias)
        sampled = float(sampled_softmax_loss(features, weight, None, targets,
                                             pattern).data)
        dense = float(F.cross_entropy(F.linear(features, weight, None),
                                      targets).data)
        assert abs(sampled - dense) / dense < 0.05

    def test_gradients_match_finite_differences(self, rng):
        features, weight, bias, targets = make_head_inputs(rng, batch=4,
                                                           hidden=6, vocab=15)
        pattern = RowDropoutPattern(15, dp=3, bias=1)
        check_gradients(
            lambda: sampled_softmax_loss(features, weight, bias, targets,
                                         pattern),
            [features, weight, bias])

    def test_dropped_classes_receive_zero_gradient(self, rng):
        features, weight, bias, targets = make_head_inputs(rng, vocab=30)
        pattern = RowDropoutPattern(30, dp=3, bias=0)
        loss = sampled_softmax_loss(features, weight, bias, targets, pattern)
        loss.backward()
        classes, _, _ = sampled_class_set(pattern, targets)
        dropped = np.setdiff1d(np.arange(30), classes)
        assert np.all(weight.grad[dropped] == 0.0)
        assert np.all(bias.grad[dropped] == 0.0)
        assert np.any(weight.grad[classes] != 0.0)

    def test_pattern_size_mismatch_fails(self, rng):
        features, weight, bias, targets = make_head_inputs(rng, vocab=30)
        with pytest.raises(ValueError, match="classes"):
            sampled_softmax_loss(features, weight, bias, targets,
                                 RowDropoutPattern(29, dp=2, bias=0))


class TestCompactSoftmaxHead:
    def make_head(self, vocab=40, rate=0.5, seed=3) -> CompactSoftmaxHead:
        head = CompactSoftmaxHead(vocab, drop_rate=rate,
                                  rng=np.random.default_rng(seed))
        head.train()
        head.execution_mode = "compact"
        return head

    def test_validation(self):
        with pytest.raises(ValueError):
            CompactSoftmaxHead(0)
        with pytest.raises(ValueError):
            CompactSoftmaxHead(10, drop_rate=1.0)

    def test_pool_protocol(self):
        head = self.make_head()
        patterns = head.draw_pool(8)
        assert len(patterns) == 8
        head.set_pattern(patterns[0])
        assert head.pattern is patterns[0]
        with pytest.raises(ValueError):
            head.set_pattern(row_pattern(39, 2, 0))
        from repro.dropout.sampler import is_pattern_site

        assert is_pattern_site(head)
        assert not is_pattern_site(DenseSoftmaxHead())

    def test_loss_counts_draws_and_kept_classes(self, rng):
        features, weight, bias, targets = make_head_inputs(rng)
        head = self.make_head()
        head.set_pattern(row_pattern(40, 2, 0))
        head.loss(features, weight, bias, targets)
        head.loss(features, weight, bias, targets)
        counters = head.head_counters()
        assert counters["draws"] == 2
        classes, _, _ = sampled_class_set(head.pattern, targets)
        assert counters["kept_classes"] == 2 * len(classes)

    def test_loss_matches_functional_form(self, rng):
        features, weight, bias, targets = make_head_inputs(rng)
        head = self.make_head()
        head.set_pattern(row_pattern(40, 4, 1))
        expected = sampled_softmax_loss(features, weight, bias, targets,
                                        head.pattern)
        np.testing.assert_allclose(
            head.loss(features, weight, bias, targets).data, expected.data)

    @pytest.mark.parametrize("setup", ["eval", "masked", "zero_rate"])
    def test_fallbacks_compute_the_exact_dense_loss(self, rng, setup):
        features, weight, bias, targets = make_head_inputs(rng)
        head = self.make_head(rate=0.0 if setup == "zero_rate" else 0.5)
        if setup == "eval":
            head.eval()
        elif setup == "masked":
            head.execution_mode = "masked"
        dense = F.cross_entropy(F.linear(features, weight, bias), targets)
        np.testing.assert_allclose(
            head.loss(features, weight, bias, targets).data, dense.data)
        assert head.head_counters()["draws"] == 0


class TestLSTMIntegration:
    def make_model(self, vocab=80, strategy="row"):
        from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel

        return LSTMLanguageModel(LSTMConfig(
            vocab_size=vocab, embed_size=12, hidden_size=16, num_layers=2,
            drop_rates=(0.5, 0.5), strategy=strategy, seed=0))

    def test_model_defaults_to_dense_head(self):
        assert isinstance(self.make_model().loss_head, DenseSoftmaxHead)

    def test_set_loss_head_installs_sampled_head_sized_to_vocab(self):
        model = self.make_model(vocab=80)
        model.set_loss_head("sampled", rate=0.6)
        assert isinstance(model.loss_head, CompactSoftmaxHead)
        assert model.loss_head.vocab_size == 80
        assert model.loss_head.drop_rate == 0.6
        # The head is registered as a child module (reseeded/pooled by bind).
        assert model.loss_head in list(model.modules())

    def test_model_loss_equals_forward_plus_cross_entropy_for_dense(self, rng):
        model = self.make_model()
        model.train()
        tokens = rng.integers(0, 80, size=(5, 4))
        targets = rng.integers(0, 80, size=20)
        state = model.init_state(4)
        # Same pattern draws for both paths: resample once, then reuse.
        loss, _ = model.loss(tokens, targets, state)
        logits, _ = model(tokens, state)
        expected = F.cross_entropy(logits, targets)
        np.testing.assert_allclose(loss.data, expected.data,
                                   rtol=1e-10, atol=1e-12)

    def test_forward_logits_identical_under_either_head(self, rng):
        """Dense evaluation is preserved: swapping the training head never
        changes the exact logits the eval path computes."""
        tokens = rng.integers(0, 80, size=(5, 4))
        dense_model = self.make_model()
        sampled_model = self.make_model()
        sampled_model.set_loss_head("sampled", rate=0.7)
        sampled_model.load_state_dict(dense_model.state_dict())
        for model in (dense_model, sampled_model):
            model.eval()
        dense_logits, _ = dense_model(tokens)
        sampled_logits, _ = sampled_model(tokens)
        np.testing.assert_array_equal(dense_logits.data, sampled_logits.data)

    def test_sampled_training_loss_tracks_dense_loss(self, rng):
        """ISSUE 5 regression: with identical parameters and dropout
        patterns, the sampled head's training loss stays within tolerance of
        the dense head's exact loss."""
        vocab = 600
        from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel

        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=vocab, embed_size=16, hidden_size=24, num_layers=2,
            drop_rates=(0.5, 0.5), strategy="row", seed=0))
        model.train()
        tokens = rng.integers(0, vocab, size=(8, 6))
        targets = rng.integers(0, vocab, size=48)
        state = model.init_state(6)
        dense_loss, _ = model.loss(tokens, targets, state)
        model.set_loss_head("sampled", rate=0.5)
        model.loss_head.execution_mode = "compact"
        model.loss_head.set_pattern(row_pattern(vocab, 2, 1))
        sampled_loss, _ = model.loss(tokens, targets, state)
        dense, sampled = float(dense_loss.data), float(sampled_loss.data)
        assert abs(sampled - dense) / dense < 0.05
