"""Tests for the adaptive-softmax loss head (`repro.heads.adaptive`).

Covers the band geometry (`cluster_boundaries`, auto shortlist), the
registry round-trip, constructor validation, the *exact* two-level
factorization (hand-computed NLL, gradcheck, zero gradient on inactive
bands), the dense fallbacks (eval / masked execution), counters, tolerance
against the dense loss under Zipfian targets, and the LSTM integration —
including the ISSUE 10 contract: training through the adaptive head never
changes dense evaluation.
"""

import numpy as np
import pytest

from repro.heads import (
    AdaptiveSoftmaxHead,
    build_loss_head,
    cluster_boundaries,
    default_shortlist,
)
from repro.tensor import Tensor, check_gradients, functional as F


def zipf_targets(rng, vocab, batch, exponent=1.05):
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    cdf = np.cumsum(weights / weights.sum())
    return np.minimum(np.searchsorted(cdf, rng.random(batch)),
                      vocab - 1).astype(np.int64)


def make_inputs(rng, batch=8, hidden=6, vocab=24):
    features = Tensor(rng.normal(size=(batch, hidden)), requires_grad=True)
    weight = Tensor(rng.normal(size=(vocab, hidden)) * 0.1, requires_grad=True)
    bias = Tensor(rng.normal(size=vocab) * 0.1, requires_grad=True)
    targets = zipf_targets(rng, vocab, batch)
    return features, weight, bias, targets


def make_head(vocab=24, shortlist=8, clusters=3) -> AdaptiveSoftmaxHead:
    head = AdaptiveSoftmaxHead(vocab, shortlist=shortlist, clusters=clusters)
    head.train()
    head.execution_mode = "compact"
    return head


def factorized_nll(head, features, weight, bias, targets):
    """The adaptive loss recomputed with plain numpy, example by example."""
    logits = features @ weight.T + bias
    head_logits = logits[:, head.head_classes]
    head_log_p = head_logits - np.log(
        np.exp(head_logits - head_logits.max(axis=1, keepdims=True)).sum(axis=1)
    )[:, None] - head_logits.max(axis=1, keepdims=True)
    nll = np.zeros(len(targets))
    for index, target in enumerate(targets):
        if target < head.shortlist:
            nll[index] = -head_log_p[index, target]
            continue
        cluster = int(np.searchsorted(head.cluster_bounds, target,
                                      side="right") - 1)
        nll[index] = -head_log_p[index, head.shortlist + cluster]
        lo = int(head.cluster_bounds[cluster])
        hi = int(head.cluster_bounds[cluster + 1])
        if hi - lo > 1:
            band = logits[index, lo:hi]
            log_z = np.log(np.exp(band - band.max()).sum()) + band.max()
            nll[index] += log_z - logits[index, target]
    return nll.mean()


class TestClusterBoundaries:
    def test_edges_span_the_tail(self):
        edges = cluster_boundaries(1000, 100, 4)
        assert edges[0] == 100
        assert edges[-1] == 1000
        assert np.all(np.diff(edges) > 0)

    def test_bands_grow_geometrically(self):
        edges = cluster_boundaries(100_000, 1000, 5)
        sizes = np.diff(edges)
        assert np.all(np.diff(sizes) > 0)  # each band larger than the last

    def test_short_tail_produces_fewer_bands(self):
        edges = cluster_boundaries(12, 10, 8)  # tail of 2 cannot hold 8 bands
        assert edges[0] == 10 and edges[-1] == 12
        assert len(edges) - 1 <= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="shortlist"):
            cluster_boundaries(100, 0, 4)
        with pytest.raises(ValueError, match="shortlist"):
            cluster_boundaries(100, 100, 4)
        with pytest.raises(ValueError, match="clusters"):
            cluster_boundaries(100, 10, 0)


class TestDefaultShortlist:
    def test_quarter_of_small_vocab(self):
        assert default_shortlist(100) == 25
        assert default_shortlist(2) == 1  # never zero

    def test_capped_at_4096(self):
        assert default_shortlist(500_000) == 4096


class TestRegistry:
    def test_build_adaptive_head(self):
        head = build_loss_head("adaptive", vocab_size=200, shortlist=50,
                               clusters=3)
        assert isinstance(head, AdaptiveSoftmaxHead)
        assert head.vocab_size == 200
        assert head.shortlist == 50

    def test_adaptive_requires_vocab_size(self):
        with pytest.raises(ValueError, match="vocab_size"):
            build_loss_head("adaptive")

    def test_auto_shortlist(self):
        head = build_loss_head("adaptive", vocab_size=400)
        assert head.shortlist == default_shortlist(400)

    def test_not_a_pattern_site(self):
        from repro.dropout.sampler import is_pattern_site

        assert not is_pattern_site(build_loss_head("adaptive", vocab_size=50))


class TestValidation:
    def test_constructor_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="vocab_size"):
            AdaptiveSoftmaxHead(1)
        with pytest.raises(ValueError, match="shortlist"):
            AdaptiveSoftmaxHead(10, shortlist=-1)
        with pytest.raises(ValueError, match="shortlist"):
            AdaptiveSoftmaxHead(10, shortlist=10)
        with pytest.raises(ValueError, match="clusters"):
            AdaptiveSoftmaxHead(10, clusters=0)

    def test_weight_shape_mismatch_fails(self, rng):
        features, weight, bias, targets = make_inputs(rng, vocab=24)
        head = make_head(vocab=25)
        with pytest.raises(ValueError, match="25"):
            head.loss(features, weight, bias, targets)


class TestFactorization:
    def test_loss_matches_hand_computed_factorized_nll(self, rng):
        features, weight, bias, targets = make_inputs(rng)
        # Force tail coverage: plant one target in every band.
        head = make_head()
        targets[: head.num_clusters] = head.cluster_bounds[:-1] + 1
        expected = factorized_nll(head, features.data, weight.data, bias.data,
                                  targets)
        loss = head.loss(features, weight, bias, targets)
        np.testing.assert_allclose(float(loss.data), expected,
                                   rtol=1e-12, atol=1e-12)

    def test_gradients_match_numerical(self, rng):
        features, weight, bias, targets = make_inputs(rng, batch=5, hidden=4,
                                                      vocab=18)
        head = make_head(vocab=18, shortlist=6, clusters=2)
        check_gradients(
            lambda: head.loss(features, weight, bias, targets),
            [features, weight, bias], rtol=1e-3, atol=1e-5)

    def test_inactive_band_rows_receive_zero_gradient(self, rng):
        vocab = 30
        features, weight, bias, _ = make_inputs(rng, vocab=vocab)
        head = make_head(vocab=vocab, shortlist=10, clusters=2)
        # All targets in the shortlist: no band expands, so only the
        # shortlist rows and the pilot rows can receive gradient.
        targets = np.arange(8) % 10
        head.loss(features, weight, bias, targets).backward()
        touched = head.head_classes
        untouched = np.setdiff1d(np.arange(vocab), touched)
        assert untouched.size  # the setup actually leaves rows inactive
        assert np.all(weight.grad[untouched] == 0.0)
        assert np.all(bias.grad[untouched] == 0.0)
        assert np.any(weight.grad[touched] != 0.0)

    def test_pilot_rows_receive_gradient_from_the_head_level(self, rng):
        features, weight, bias, _ = make_inputs(rng, vocab=24)
        head = make_head()
        targets = np.zeros(8, dtype=np.int64)  # shortlist-only batch
        head.loss(features, weight, bias, targets).backward()
        # Pilots compete in the head softmax, so they get gradient even when
        # no tail target appears.
        assert np.all(np.any(weight.grad[head.pilots] != 0.0, axis=1))

    def test_singleton_bands_contribute_no_cluster_loss(self, rng):
        # vocab=6, shortlist=4 leaves a 2-class tail that splits into two
        # singleton bands: the factorized loss is the head loss alone.
        features, weight, bias, _ = make_inputs(rng, batch=4, vocab=6)
        head = make_head(vocab=6, shortlist=4, clusters=2)
        assert np.all(np.diff(head.cluster_bounds) == 1)
        targets = np.array([0, 4, 5, 1])
        expected = factorized_nll(head, features.data, weight.data, bias.data,
                                  targets)
        loss = head.loss(features, weight, bias, targets)
        np.testing.assert_allclose(float(loss.data), expected, rtol=1e-12)

    def test_loss_tracks_dense_cross_entropy_under_zipf_targets(self, rng):
        """The factorization is not the dense loss, but at init (near-uniform
        logits) the two stay within a modest relative tolerance."""
        features, weight, bias, _ = make_inputs(rng, batch=32, hidden=12,
                                                vocab=64)
        targets = zipf_targets(rng, 64, 32)
        head = make_head(vocab=64, shortlist=16, clusters=3)
        adaptive = float(head.loss(features, weight, bias, targets).data)
        dense = float(F.cross_entropy(F.linear(features, weight, bias),
                                      targets).data)
        assert abs(adaptive - dense) / dense < 0.25


class TestFallbacksAndCounters:
    @pytest.mark.parametrize("setup", ["eval", "masked"])
    def test_fallbacks_compute_the_exact_dense_loss(self, rng, setup):
        features, weight, bias, targets = make_inputs(rng)
        head = make_head()
        if setup == "eval":
            head.eval()
        else:
            head.execution_mode = "masked"
        dense = F.cross_entropy(F.linear(features, weight, bias), targets)
        np.testing.assert_allclose(
            head.loss(features, weight, bias, targets).data, dense.data)
        assert head.head_counters()["draws"] == 0

    def test_counters_track_steps_bands_and_projected_classes(self, rng):
        features, weight, bias, _ = make_inputs(rng, batch=3, vocab=24)
        head = make_head(vocab=24, shortlist=8, clusters=2)
        # One target in the first band only.
        lo, hi = int(head.cluster_bounds[0]), int(head.cluster_bounds[1])
        targets = np.array([0, 1, lo])
        head.loss(features, weight, bias, targets)
        counters = head.head_counters()
        assert counters["draws"] == 1
        assert counters["cluster_activations"] == 1
        assert counters["kept_classes"] == len(head.head_classes) + (hi - lo)

    def test_deterministic_given_targets(self, rng):
        features, weight, bias, targets = make_inputs(rng)
        head = make_head()
        first = float(head.loss(features, weight, bias, targets).data)
        second = float(head.loss(features, weight, bias, targets).data)
        assert first == second


class TestLSTMIntegration:
    def make_model(self, vocab=80):
        from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel

        return LSTMLanguageModel(LSTMConfig(
            vocab_size=vocab, embed_size=12, hidden_size=16, num_layers=2,
            drop_rates=(0.5, 0.5), strategy="row", seed=0))

    def test_set_loss_head_installs_adaptive_head_sized_to_vocab(self):
        model = self.make_model(vocab=80)
        model.set_loss_head("adaptive", shortlist=20, clusters=3)
        assert isinstance(model.loss_head, AdaptiveSoftmaxHead)
        assert model.loss_head.vocab_size == 80
        assert model.loss_head.shortlist == 20
        assert model.loss_head in list(model.modules())

    def test_forward_logits_identical_under_adaptive_head(self, rng):
        """ISSUE 10 contract: dense evaluation is never approximated —
        swapping in the adaptive training head leaves the exact logits (and
        hence perplexity) bit-identical."""
        tokens = rng.integers(0, 80, size=(5, 4))
        dense_model = self.make_model()
        adaptive_model = self.make_model()
        adaptive_model.set_loss_head("adaptive", shortlist=20)
        adaptive_model.load_state_dict(dense_model.state_dict())
        for model in (dense_model, adaptive_model):
            model.eval()
        dense_logits, _ = dense_model(tokens)
        adaptive_logits, _ = adaptive_model(tokens)
        np.testing.assert_array_equal(dense_logits.data, adaptive_logits.data)
