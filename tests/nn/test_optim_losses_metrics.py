"""Tests for optimisers, LR schedules, loss modules and metrics."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantLR,
    CrossEntropyLoss,
    ExponentialLR,
    Linear,
    MSELoss,
    SGD,
    StepLR,
    accuracy,
    perplexity_from_loss,
    top_k_accuracy,
)
from repro.nn.metrics import confusion_matrix, error_rate
from repro.nn.module import Parameter
from repro.tensor import Tensor


def quadratic_params(rng):
    """A single parameter whose loss is a simple quadratic bowl."""
    return Parameter(rng.normal(size=(4,)) + 5.0)


class TestSGD:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_hyperparameters(self, rng):
        p = quadratic_params(rng)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, weight_decay=-1)

    def test_descends_quadratic(self, rng):
        p = quadratic_params(rng)
        optimizer = SGD([p], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (Tensor(p.data) * 0).sum()  # placeholder; compute grad manually
            p.grad = 2 * p.data
            optimizer.step()
        assert np.all(np.abs(p.data) < 1e-3)

    def test_momentum_accelerates(self, rng):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            optimizer = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                p.grad = 2 * p.data
                optimizer.step()
            return abs(float(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        optimizer = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        optimizer.step()
        assert float(p.data[0]) < 1.0

    def test_grad_clip_bounds_update(self):
        p = Parameter(np.array([0.0]))
        optimizer = SGD([p], lr=1.0, grad_clip=1.0)
        p.grad = np.array([100.0])
        optimizer.step()
        assert abs(float(p.data[0])) <= 1.0 + 1e-9

    def test_missing_grad_treated_as_zero(self):
        p = Parameter(np.array([3.0]))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [3.0])

    def test_clip_skips_missing_grads_without_allocating(self, rng, monkeypatch):
        # Satellite bugfix: _clip_scale must not materialise a zero array per
        # parameter without a gradient — the norm of a missing gradient is
        # exactly zero, so those parameters are skipped outright.
        import repro.nn.optim as optim_module

        with_grad = Parameter(rng.normal(size=(8, 4)))
        without_grad = Parameter(rng.normal(size=(512, 512)))
        optimizer = SGD([with_grad, without_grad], lr=0.1, grad_clip=0.5)
        with_grad.grad = rng.normal(size=(8, 4))
        expected = 0.5 / np.linalg.norm(with_grad.grad)

        calls = []
        real_zeros_like = np.zeros_like
        monkeypatch.setattr(optim_module.np, "zeros_like",
                            lambda *a, **k: calls.append(a) or real_zeros_like(*a, **k))
        scale = optimizer._clip_scale()
        assert scale == pytest.approx(expected)
        assert calls == []

    def test_clip_norm_matches_over_partial_grads(self, rng):
        # The clip factor over a mixed present/missing gradient list equals
        # the one computed with explicit zero gradients in the gaps.
        params = [Parameter(rng.normal(size=(16, 3))) for _ in range(3)]
        grads = [rng.normal(size=(16, 3)), None, rng.normal(size=(16, 3))]
        sparse_list = SGD(params, lr=0.1, grad_clip=1.0)
        for p, g in zip(params, grads):
            p.grad = g
        dense_list = SGD([Parameter(p.data.copy()) for p in params],
                         lr=0.1, grad_clip=1.0)
        for p, g in zip(dense_list.parameters, grads):
            p.grad = g if g is not None else np.zeros_like(p.data)
        assert sparse_list._clip_scale() == dense_list._clip_scale()

    def test_optimizer_trains_linear_layer(self, rng):
        layer = Linear(3, 1, rng=rng)
        optimizer = SGD(layer.parameters(), lr=0.1)
        x = Tensor(rng.normal(size=(32, 3)))
        target = Tensor(x.data @ np.array([[1.0], [-2.0], [0.5]]))
        loss_fn = MSELoss()
        first_loss = None
        for _ in range(100):
            optimizer.zero_grad()
            loss = loss_fn(layer(x), target)
            if first_loss is None:
                first_loss = float(loss.data)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < first_loss * 0.05


class TestAdam:
    def test_invalid_betas(self, rng):
        with pytest.raises(ValueError):
            Adam([quadratic_params(rng)], betas=(1.0, 0.9))

    def test_descends_quadratic(self, rng):
        p = quadratic_params(rng)
        optimizer = Adam([p], lr=0.3)
        for _ in range(300):
            p.grad = 2 * p.data
            optimizer.step()
        assert np.all(np.abs(p.data) < 1e-2)

    def test_grad_clip_bounds_update(self):
        # Satellite bugfix: Adam must accept and apply grad_clip like SGD.
        clipped = Parameter(np.array([0.0, 0.0]))
        free = Parameter(np.array([0.0, 0.0]))
        huge = np.array([1e6, -1e6])
        clipped_opt = Adam([clipped], lr=0.1, grad_clip=1.0)
        free_opt = Adam([free], lr=0.1)
        # A clipped huge gradient behaves like the same direction at norm 1.
        clipped.grad = huge.copy()
        clipped_opt.step()
        free.grad = huge / np.linalg.norm(huge)
        free_opt.step()
        assert np.allclose(clipped.data, free.data)

    def test_step_updates_parameter_in_place(self, rng):
        # Satellite bugfix: the update must mutate param.data (views and the
        # runtime's dtype-cast arrays rely on the identity), not rebind it.
        p = quadratic_params(rng)
        original = p.data
        optimizer = Adam([p], lr=0.1)
        p.grad = np.ones_like(p.data)
        optimizer.step()
        assert p.data is original


class TestSchedules:
    def test_constant(self, rng):
        optimizer = SGD([quadratic_params(rng)], lr=0.5)
        schedule = ConstantLR(optimizer)
        for _ in range(5):
            assert schedule.step() == 0.5

    def test_step_lr(self, rng):
        optimizer = SGD([quadratic_params(rng)], lr=1.0)
        schedule = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [schedule.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr_flat_then_decay(self, rng):
        optimizer = SGD([quadratic_params(rng)], lr=1.0)
        schedule = ExponentialLR(optimizer, gamma=0.5, flat_epochs=2)
        lrs = [schedule.step() for _ in range(4)]
        assert lrs[0] == 1.0 and lrs[1] == 1.0
        assert np.isclose(lrs[2], 0.5) and np.isclose(lrs[3], 0.25)

    def test_invalid_step_lr(self, rng):
        optimizer = SGD([quadratic_params(rng)], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)

    def test_step_rejects_non_positive_lr(self, rng):
        # Satellite bugfix: the lr > 0 invariant the optimizer constructor
        # enforces must also hold across every schedule step.
        from repro.nn.optim import LRSchedule

        class ToZero(LRSchedule):
            def lr_at(self, epoch):
                return 0.0

        schedule = ToZero(SGD([quadratic_params(rng)], lr=1.0))
        with pytest.raises(ValueError, match="positive and finite"):
            schedule.step()

    def test_step_rejects_non_finite_lr(self, rng):
        from repro.nn.optim import LRSchedule

        class ToNan(LRSchedule):
            def lr_at(self, epoch):
                return float("nan")

        schedule = ToNan(SGD([quadratic_params(rng)], lr=1.0))
        with pytest.raises(ValueError, match="positive and finite"):
            schedule.step()

    def test_step_lr_underflow_to_zero_raises(self, rng):
        # gamma=0 makes StepLR hit exactly 0.0 at its first boundary: the
        # step that crosses it must fail loudly, not silently freeze training.
        optimizer = SGD([quadratic_params(rng)], lr=1.0)
        schedule = StepLR(optimizer, step_size=1, gamma=0.0)
        with pytest.raises(ValueError, match="positive and finite"):
            schedule.step()
        assert optimizer.lr == 1.0  # the optimizer never saw the bad value


class TestLossesAndMetrics:
    def test_cross_entropy_module(self, rng):
        loss = CrossEntropyLoss()(Tensor(rng.normal(size=(4, 3))), np.array([0, 1, 2, 0]))
        assert float(loss.data) > 0

    def test_loss_invalid_reduction(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(reduction="bad")
        with pytest.raises(ValueError):
            MSELoss(reduction="bad")

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
        assert error_rate(logits, np.array([0, 1, 1])) == pytest.approx(1 / 3)

    def test_accuracy_accepts_tensor(self, rng):
        logits = Tensor(rng.normal(size=(10, 4)))
        value = accuracy(logits, rng.integers(0, 4, size=10))
        assert 0.0 <= value <= 1.0

    def test_top_k_accuracy(self):
        logits = np.array([[5.0, 4.0, 0.0, 0.0]])
        assert top_k_accuracy(logits, np.array([1]), k=2) == 1.0
        assert top_k_accuracy(logits, np.array([3]), k=2) == 0.0

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((1, 3)), np.array([0]), k=0)

    def test_perplexity(self):
        assert perplexity_from_loss(0.0) == pytest.approx(1.0)
        assert perplexity_from_loss(np.log(50.0)) == pytest.approx(50.0)
        assert np.isfinite(perplexity_from_loss(1e6))

    def test_confusion_matrix(self):
        logits = np.array([[2.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        matrix = confusion_matrix(logits, np.array([0, 1, 1]), num_classes=2)
        assert matrix[0, 0] == 1 and matrix[1, 0] == 1 and matrix[1, 1] == 1
        assert matrix.sum() == 3
