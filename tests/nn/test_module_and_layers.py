"""Tests for the Module system and the feed-forward layers."""

import numpy as np
import pytest

from repro.nn import (
    Embedding,
    Flatten,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    initializers,
)
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, check_gradients


class TestModuleSystem:
    def test_parameter_registration(self, rng):
        layer = Linear(4, 3, rng=rng)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]
        assert len(layer.parameters()) == 2

    def test_nested_module_parameters(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert len(model.parameters()) == 4
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self, rng):
        layer = Linear(10, 5, rng=rng)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_state_dict_roundtrip(self, rng):
        a = Linear(4, 3, rng=rng)
        b = Linear(4, 3, rng=np.random.default_rng(999))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self, rng):
        a = Linear(4, 3, rng=rng)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self, rng):
        a = Linear(4, 3, rng=rng)
        state = a.state_dict()
        state["weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_sequential_iteration_and_indexing(self, rng):
        model = Sequential(Linear(2, 2, rng=rng), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)
        assert len(list(iter(model))) == 2

    def test_sequential_append(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        model.append(ReLU())
        assert len(model) == 2
        assert len(model.parameters()) == 2


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = Tensor(rng.normal(size=(7, 5)))
        out = layer(x)
        assert out.shape == (7, 3)
        assert np.allclose(out.data, x.data @ layer.weight.data.T + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = Tensor(rng.normal(size=(5, 4)))
        check_gradients(lambda: (layer(x) ** 2).sum(), layer.parameters())

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)


class TestActivationsAndUtilityLayers:
    @pytest.mark.parametrize("layer_cls,fn", [
        (ReLU, lambda x: np.maximum(x, 0)),
        (Sigmoid, lambda x: 1 / (1 + np.exp(-x))),
        (Tanh, np.tanh),
    ])
    def test_activation_values(self, layer_cls, fn, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(layer_cls()(Tensor(x)).data, fn(x))

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x

    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3)))
        assert Flatten()(x).shape == (4, 6)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(20, 6, rng=rng)
        out = emb(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 6)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)


class TestInitializers:
    @pytest.mark.parametrize("name", ["xavier_uniform", "xavier_normal", "he_normal",
                                      "uniform", "orthogonal"])
    def test_shapes(self, name, rng):
        init = initializers.get(name)
        assert init((16, 8), rng).shape == (16, 8)

    def test_unknown_initializer(self):
        with pytest.raises(KeyError):
            initializers.get("nope")

    def test_zeros(self):
        assert np.all(initializers.zeros((3, 3)) == 0)

    def test_orthogonal_is_orthogonal(self, rng):
        q = initializers.orthogonal((8, 8), rng)
        assert np.allclose(q @ q.T, np.eye(8), atol=1e-8)

    def test_orthogonal_requires_2d(self, rng):
        with pytest.raises(ValueError):
            initializers.orthogonal((4,), rng)

    def test_xavier_uniform_bounds(self, rng):
        w = initializers.xavier_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= limit + 1e-12)
