"""Tests for the conventional dropout baselines (Dropout, DropConnectLinear)."""

import numpy as np
import pytest

from repro.nn import Dropout, DropConnectLinear
from repro.tensor import Tensor


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(4, 6)))
        assert np.allclose(layer(x).data, x.data)

    def test_zero_rate_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)))
        assert layer(x) is x

    def test_training_drops_roughly_rate_fraction(self, rng):
        layer = Dropout(0.3, rng=rng)
        x = Tensor(np.ones((200, 200)))
        out = layer(x)
        dropped_fraction = float(np.mean(out.data == 0.0))
        assert abs(dropped_fraction - 0.3) < 0.02

    def test_inverted_scaling_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((300, 300)))
        out = layer(x)
        assert abs(float(out.data.mean()) - 1.0) < 0.05

    def test_mask_blocks_gradient(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        layer(x).sum().backward()
        mask = layer.last_mask
        assert np.allclose(x.grad[mask == 0], 0.0)
        assert np.all(x.grad[mask == 1] != 0.0)

    def test_new_mask_each_call(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((20, 20)))
        layer(x)
        first = layer.last_mask.copy()
        layer(x)
        assert not np.array_equal(first, layer.last_mask)

    def test_no_scale_option(self, rng):
        layer = Dropout(0.5, rng=rng, scale_at_train=False)
        out = layer(Tensor(np.ones((50, 50))))
        surviving = out.data[out.data != 0]
        assert np.allclose(surviving, 1.0)


class TestDropConnectLinear:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            DropConnectLinear(4, 3, rate=1.5)

    def test_eval_mode_uses_full_weights(self, rng):
        layer = DropConnectLinear(5, 3, rate=0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(2, 5)))
        expected = x.data @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x).data, expected)

    def test_training_masks_weights(self, rng):
        layer = DropConnectLinear(30, 20, rate=0.4, rng=rng)
        layer(Tensor(rng.normal(size=(4, 30))))
        dropped_fraction = float(np.mean(layer.last_mask == 0.0))
        assert abs(dropped_fraction - 0.4) < 0.1

    def test_output_shape(self, rng):
        layer = DropConnectLinear(6, 4, rate=0.3, rng=rng)
        assert layer(Tensor(rng.normal(size=(7, 6)))).shape == (7, 4)

    def test_weight_property_exposes_linear_parameter(self, rng):
        layer = DropConnectLinear(6, 4, rate=0.3, rng=rng)
        assert layer.weight is layer.linear.weight
        assert layer.bias is layer.linear.bias

    def test_gradients_flow_to_weights(self, rng):
        layer = DropConnectLinear(5, 3, rate=0.5, rng=rng)
        layer(Tensor(rng.normal(size=(4, 5)))).sum().backward()
        assert layer.weight.grad is not None
        # Dropped weights receive zero gradient.
        assert np.allclose(layer.weight.grad[layer.last_mask == 0], 0.0)
