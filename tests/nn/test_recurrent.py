"""Tests for the LSTM cell and multi-layer LSTM."""

import numpy as np
import pytest

from repro.nn import Dropout, LSTM, LSTMCell
from repro.tensor import Tensor, check_gradients


class TestLSTMCell:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)
        with pytest.raises(ValueError):
            LSTMCell(4, 0)

    def test_output_shapes(self, rng):
        cell = LSTMCell(6, 8, rng=rng)
        x = Tensor(rng.normal(size=(3, 6)))
        h, (h_state, c_state) = cell(x)
        assert h.shape == (3, 8)
        assert h_state.shape == (3, 8)
        assert c_state.shape == (3, 8)

    def test_state_carries_information(self, rng):
        cell = LSTMCell(4, 5, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)))
        _, state = cell(x)
        out_with_state, _ = cell(x, state)
        out_without, _ = cell(x)
        assert not np.allclose(out_with_state.data, out_without.data)

    def test_forget_bias_initialised_positive(self, rng):
        cell = LSTMCell(4, 5, rng=rng, forget_bias=1.0)
        hidden = 5
        assert np.allclose(cell.bias.data[hidden:2 * hidden], 1.0)
        assert np.allclose(cell.bias.data[:hidden], 0.0)

    def test_gradients_flow_through_time(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        x1 = Tensor(rng.normal(size=(2, 3)))
        x2 = Tensor(rng.normal(size=(2, 3)))

        def loss_fn():
            _, state = cell(x1)
            out, _ = cell(x2, state)
            return (out ** 2).sum()

        check_gradients(loss_fn, [cell.weight_x, cell.weight_h, cell.bias],
                        rtol=1e-3, atol=1e-5)

    def test_cell_state_bounded_by_tanh_output(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        h, _ = cell(Tensor(rng.normal(size=(2, 3)) * 10))
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)


class TestLSTM:
    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            LSTM(4, 4, num_layers=0)

    def test_output_shapes(self, rng):
        lstm = LSTM(5, 7, num_layers=2, rng=rng)
        inputs = Tensor(rng.normal(size=(6, 3, 5)))
        outputs, state = lstm(inputs)
        assert outputs.shape == (6, 3, 7)
        assert len(state) == 2
        assert state[0][0].shape == (3, 7)

    def test_init_state_zeros(self, rng):
        lstm = LSTM(4, 6, num_layers=3, rng=rng)
        state = lstm.init_state(batch=5)
        assert len(state) == 3
        assert np.allclose(state[1][0].data, 0.0)

    def test_state_continuation_differs_from_fresh(self, rng):
        lstm = LSTM(4, 6, num_layers=1, rng=rng)
        inputs = Tensor(rng.normal(size=(3, 2, 4)))
        _, state = lstm(inputs)
        continued, _ = lstm(inputs, state)
        fresh, _ = lstm(inputs)
        assert not np.allclose(continued.data, fresh.data)

    def test_wrong_state_length_raises(self, rng):
        lstm = LSTM(4, 6, num_layers=2, rng=rng)
        inputs = Tensor(rng.normal(size=(3, 2, 4)))
        with pytest.raises(ValueError):
            lstm(inputs, lstm.init_state(2)[:1])

    def test_dropout_builder_is_used_between_layers(self, rng):
        built = []

        def builder(layer):
            built.append(layer)
            return Dropout(0.5, rng=rng)

        lstm = LSTM(4, 6, num_layers=3, rng=rng, dropout_builder=builder)
        assert built == [0, 1]
        assert len(lstm.inter_layer_dropout) == 2

    def test_backward_through_sequence(self, rng):
        lstm = LSTM(3, 4, num_layers=2, rng=rng)
        inputs = Tensor(rng.normal(size=(4, 2, 3)), requires_grad=True)
        outputs, _ = lstm(inputs)
        (outputs ** 2).sum().backward()
        assert inputs.grad is not None
        assert all(p.grad is not None for p in lstm.parameters())

    def test_single_layer_has_no_interlayer_dropout(self, rng):
        lstm = LSTM(4, 4, num_layers=1, rng=rng)
        assert lstm.inter_layer_dropout == []


class TestInputPatternCompaction:
    """The pattern-aware cell input GEMM (paper's non-recurrent LSTM dropout)."""

    def _pattern(self, num_units, dp=2, bias=0):
        from repro.dropout.patterns import RowDropoutPattern

        return RowDropoutPattern(num_units=num_units, dp=dp, bias=bias)

    def test_cell_compact_matches_dense_on_masked_input(self, rng):
        cell = LSTMCell(6, 5, rng=rng)
        pattern = self._pattern(6, dp=3, bias=1)
        x = Tensor(rng.normal(size=(4, 6)) * pattern.mask()[None, :])
        dense, _ = cell(x)
        compact, _ = cell(x, input_pattern=pattern)
        assert np.allclose(dense.data, compact.data)

    def test_lstm_discovers_interlayer_patterns(self, rng):
        from repro.dropout.layers import ApproxRandomDropout
        from repro.nn.recurrent import active_input_pattern

        dropout = ApproxRandomDropout(6, 0.5, rng=np.random.default_rng(0))
        assert active_input_pattern(dropout, 6) is not None or dropout.pattern.dp == 1
        assert active_input_pattern(dropout, 7) is None  # wrong width
        dropout.execution_mode = "masked"
        assert active_input_pattern(dropout, 6) is None
        dropout.execution_mode = "compact"
        dropout.eval()
        assert active_input_pattern(dropout, 6) is None  # not training

    def test_conventional_dropout_never_compacts(self, rng):
        from repro.nn.recurrent import active_input_pattern

        assert active_input_pattern(Dropout(0.5, rng=rng), 6) is None
        assert active_input_pattern(None, 6) is None

    def test_lstm_forward_with_pattern_matches_dense(self, rng):
        from repro.dropout.layers import ApproxRandomDropout

        def builder(layer):
            return ApproxRandomDropout(5, 0.5, rng=np.random.default_rng(3))

        lstm = LSTM(4, 5, num_layers=2, rng=rng, dropout_builder=builder)
        inputs = Tensor(rng.normal(size=(3, 2, 4)))
        out_compact, _ = lstm(inputs)
        for module in lstm.modules():
            if hasattr(module, "execution_mode"):
                module.execution_mode = "masked"
        out_masked, _ = lstm(inputs)
        assert np.allclose(out_compact.data, out_masked.data)


class TestRecurrentDropConnectSite:
    """The recurrent weight_h projection as a pattern site (tiled execution)."""

    def _build_lstm(self, mode, seed=5, hidden=24, layers=2):
        from repro.dropout.layers import ApproxRecurrentDropConnect

        sites = []

        def recurrent_builder(layer):
            site = ApproxRecurrentDropConnect(hidden, 0.5, enabled=True,
                                              rng=np.random.default_rng(9))
            site.execution_mode = mode
            sites.append(site)
            return site

        lstm = LSTM(6, hidden, num_layers=layers,
                    rng=np.random.default_rng(seed),
                    recurrent_dropout_builder=recurrent_builder)
        return lstm, sites

    def test_builder_attaches_one_site_per_cell(self):
        lstm, sites = self._build_lstm("compact", layers=3)
        assert len(sites) == 3
        assert [cell.recurrent_dropout for cell in lstm.cells] == sites

    def test_dense_vs_tiled_equivalence_through_the_unroll(self, rng):
        """With the same installed pattern, the masked (dense GEMM + weight
        mask) and tiled (compact plan + hoisted window context) executions of
        a whole multi-layer unroll agree — forward and gradients."""
        masked_lstm, masked_sites = self._build_lstm("masked")
        tiled_lstm, tiled_sites = self._build_lstm("compact")
        patterns = [site.sampler.sample_recurrent_pattern(24, 4, tile=site.tile)
                    for site in masked_sites]
        for masked_site, tiled_site, pattern in zip(masked_sites, tiled_sites,
                                                    patterns):
            masked_site.set_pattern(pattern)
            tiled_site.set_pattern(pattern)
        inputs = rng.normal(size=(4, 3, 6))
        results = []
        for lstm in (masked_lstm, tiled_lstm):
            x = Tensor(inputs, requires_grad=True)
            out, _ = lstm(x)
            (out ** 2).sum().backward()
            grads = [cell.weight_h.grad.copy() for cell in lstm.cells]
            results.append((out.data.copy(), x.grad.copy(), grads))
        np.testing.assert_allclose(results[1][0], results[0][0],
                                   rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(results[1][1], results[0][1],
                                   rtol=1e-10, atol=1e-12)
        for masked_grad, tiled_grad, pattern in zip(results[0][2],
                                                    results[1][2], patterns):
            np.testing.assert_allclose(tiled_grad, masked_grad,
                                       rtol=1e-10, atol=1e-12)
            # Dropped recurrent tiles receive exactly zero gradient.
            assert np.all(tiled_grad[pattern.mask() == 0.0] == 0.0)

    def test_unroll_hoists_one_context_per_cell(self, rng):
        """The weight-tile gather must run once per window, not per timestep."""
        from repro.backends import NumpyBackend

        lstm, sites = self._build_lstm("compact", layers=1)
        backend = NumpyBackend()
        sites[0].backend = backend
        seq_len = 5
        lstm(Tensor(rng.normal(size=(seq_len, 2, 6))))
        classes = len(__import__(
            "repro.dropout.engine", fromlist=["plan_column_classes"]
        ).plan_column_classes(
            __import__(
                "repro.dropout.engine", fromlist=["compile_recurrent_plan"]
            ).compile_recurrent_plan(sites[0].pattern)))
        # One weight gather per column class for the whole window (the
        # context) and nothing per timestep: the per-timestep class GEMMs run
        # through the backend's context primitives against the pre-gathered
        # blocks (one context_forward per timestep, `classes` GEMMs each).
        assert backend.calls["gather"] == classes
        assert backend.calls["context_forward"] == seq_len
        assert backend.calls["context_gemm"] == seq_len * classes

    def test_eval_mode_unroll_is_dense_scaled(self, rng):
        lstm, sites = self._build_lstm("compact", layers=1)
        lstm.eval()
        x = Tensor(rng.normal(size=(3, 2, 6)))
        out, _ = lstm(x)
        assert np.all(np.isfinite(out.data))
        assert sites[0].window_context(lstm.cells[0].weight_h) is None

    def test_disabled_site_matches_plain_cell(self, rng):
        from repro.dropout.layers import ApproxRecurrentDropConnect

        site = ApproxRecurrentDropConnect(8, 0.5, enabled=False,
                                          rng=np.random.default_rng(0))
        with_site = LSTMCell(4, 8, rng=np.random.default_rng(1),
                             recurrent_dropout=site)
        without = LSTMCell(4, 8, rng=np.random.default_rng(1))
        x = Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(with_site(x)[0].data, without(x)[0].data)
