"""Tests for the LSTM cell and multi-layer LSTM."""

import numpy as np
import pytest

from repro.nn import Dropout, LSTM, LSTMCell
from repro.tensor import Tensor, check_gradients


class TestLSTMCell:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)
        with pytest.raises(ValueError):
            LSTMCell(4, 0)

    def test_output_shapes(self, rng):
        cell = LSTMCell(6, 8, rng=rng)
        x = Tensor(rng.normal(size=(3, 6)))
        h, (h_state, c_state) = cell(x)
        assert h.shape == (3, 8)
        assert h_state.shape == (3, 8)
        assert c_state.shape == (3, 8)

    def test_state_carries_information(self, rng):
        cell = LSTMCell(4, 5, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)))
        _, state = cell(x)
        out_with_state, _ = cell(x, state)
        out_without, _ = cell(x)
        assert not np.allclose(out_with_state.data, out_without.data)

    def test_forget_bias_initialised_positive(self, rng):
        cell = LSTMCell(4, 5, rng=rng, forget_bias=1.0)
        hidden = 5
        assert np.allclose(cell.bias.data[hidden:2 * hidden], 1.0)
        assert np.allclose(cell.bias.data[:hidden], 0.0)

    def test_gradients_flow_through_time(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        x1 = Tensor(rng.normal(size=(2, 3)))
        x2 = Tensor(rng.normal(size=(2, 3)))

        def loss_fn():
            _, state = cell(x1)
            out, _ = cell(x2, state)
            return (out ** 2).sum()

        check_gradients(loss_fn, [cell.weight, cell.bias], rtol=1e-3, atol=1e-5)

    def test_cell_state_bounded_by_tanh_output(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        h, _ = cell(Tensor(rng.normal(size=(2, 3)) * 10))
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)


class TestLSTM:
    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            LSTM(4, 4, num_layers=0)

    def test_output_shapes(self, rng):
        lstm = LSTM(5, 7, num_layers=2, rng=rng)
        inputs = Tensor(rng.normal(size=(6, 3, 5)))
        outputs, state = lstm(inputs)
        assert outputs.shape == (6, 3, 7)
        assert len(state) == 2
        assert state[0][0].shape == (3, 7)

    def test_init_state_zeros(self, rng):
        lstm = LSTM(4, 6, num_layers=3, rng=rng)
        state = lstm.init_state(batch=5)
        assert len(state) == 3
        assert np.allclose(state[1][0].data, 0.0)

    def test_state_continuation_differs_from_fresh(self, rng):
        lstm = LSTM(4, 6, num_layers=1, rng=rng)
        inputs = Tensor(rng.normal(size=(3, 2, 4)))
        _, state = lstm(inputs)
        continued, _ = lstm(inputs, state)
        fresh, _ = lstm(inputs)
        assert not np.allclose(continued.data, fresh.data)

    def test_wrong_state_length_raises(self, rng):
        lstm = LSTM(4, 6, num_layers=2, rng=rng)
        inputs = Tensor(rng.normal(size=(3, 2, 4)))
        with pytest.raises(ValueError):
            lstm(inputs, lstm.init_state(2)[:1])

    def test_dropout_builder_is_used_between_layers(self, rng):
        built = []

        def builder(layer):
            built.append(layer)
            return Dropout(0.5, rng=rng)

        lstm = LSTM(4, 6, num_layers=3, rng=rng, dropout_builder=builder)
        assert built == [0, 1]
        assert len(lstm.inter_layer_dropout) == 2

    def test_backward_through_sequence(self, rng):
        lstm = LSTM(3, 4, num_layers=2, rng=rng)
        inputs = Tensor(rng.normal(size=(4, 2, 3)), requires_grad=True)
        outputs, _ = lstm(inputs)
        (outputs ** 2).sum().backward()
        assert inputs.grad is not None
        assert all(p.grad is not None for p in lstm.parameters())

    def test_single_layer_has_no_interlayer_dropout(self, rng):
        lstm = LSTM(4, 4, num_layers=1, rng=rng)
        assert lstm.inter_layer_dropout == []
